//! Assembling serial systems (§3.4) and R/W Locking systems (§5.3).

use crate::sync::Arc;
use std::collections::BTreeMap;

use ntx_automata::{BoxedAutomaton, ReplayError, System};
use ntx_tree::{TxId, TxTree};

use crate::action::Action;
use crate::generic_scheduler::{GenericScheduler, GenericSchedulerConfig};
use crate::lock_object::{LockObject, LockObjectConfig};
use crate::object::BasicObject;
use crate::semantics::ObjectSemantics;
use crate::serial_scheduler::{SchedulerConfig, SerialScheduler};
use crate::transaction::{TxAutomaton, TxProgram};

/// Complete description of one nested-transaction system: the system type
/// (tree), per-object data semantics, per-transaction programs and the
/// configuration of schedulers and lock objects.
///
/// From one spec both the **serial system** (transactions + basic objects +
/// serial scheduler) and the **R/W Locking system** (same transactions +
/// lock objects + generic scheduler) can be built — the comparison at the
/// heart of the paper's correctness condition.
#[derive(Clone)]
pub struct SystemSpec<S: ObjectSemantics> {
    /// The system type.
    pub tree: Arc<TxTree>,
    /// Data-type semantics per object (indexed by `ObjectId`).
    pub semantics: Vec<S>,
    /// Programs for internal transactions. Internal transactions without an
    /// entry run the default program: request all children at once, commit
    /// with the sum of the committed children's values.
    pub programs: BTreeMap<TxId, TxProgram>,
    /// Serial scheduler knobs.
    pub serial_config: SchedulerConfig,
    /// Generic scheduler knobs.
    pub generic_config: GenericSchedulerConfig,
    /// Lock object knobs (commit policy, footnote-8 optimisation).
    pub lock_config: LockObjectConfig,
    /// Use [`crate::transaction::BlackBoxTx`] automata instead of
    /// `TxProgram`s: transactions accept *any* well-formedness-preserving
    /// behaviour, as in the paper. Black boxes cannot drive a system, so
    /// this is for replaying externally produced schedules (conformance
    /// checking of the runtime).
    pub blackbox_transactions: bool,
}

impl<S: ObjectSemantics> SystemSpec<S> {
    /// A spec with default programs and configurations.
    ///
    /// # Panics
    /// Panics unless `semantics` has one entry per object of `tree`.
    pub fn new(tree: Arc<TxTree>, semantics: Vec<S>) -> Self {
        assert_eq!(
            semantics.len(),
            tree.object_count(),
            "need exactly one semantics per object"
        );
        SystemSpec {
            tree,
            semantics,
            programs: BTreeMap::new(),
            serial_config: SchedulerConfig::default(),
            generic_config: GenericSchedulerConfig::default(),
            lock_config: LockObjectConfig::default(),
            blackbox_transactions: false,
        }
    }

    /// Switch to black-box transaction automata (see
    /// [`SystemSpec::blackbox_transactions`]).
    pub fn with_blackbox_transactions(mut self) -> Self {
        self.blackbox_transactions = true;
        self
    }

    /// Set the program of internal transaction `t`.
    pub fn with_program(mut self, t: TxId, program: TxProgram) -> Self {
        assert!(!self.tree.is_access(t), "accesses have no program");
        self.programs.insert(t, program);
        self
    }

    /// Program used for internal transaction `t`.
    pub fn program_of(&self, t: TxId) -> TxProgram {
        self.programs
            .get(&t)
            .cloned()
            .unwrap_or_else(|| TxProgram::all_at_once(self.tree.children(t).to_vec()))
    }

    fn tx_components(&self) -> Vec<BoxedAutomaton<Action>> {
        self.tree
            .all_tx()
            .filter(|&t| !self.tree.is_access(t))
            .map(|t| -> BoxedAutomaton<Action> {
                if self.blackbox_transactions {
                    Box::new(crate::transaction::BlackBoxTx::new(self.tree.clone(), t))
                } else {
                    Box::new(TxAutomaton::new(self.tree.clone(), t, self.program_of(t)))
                }
            })
            .collect()
    }

    /// Build the serial system: transaction automata, basic objects and the
    /// serial scheduler.
    pub fn serial_system(&self) -> System<Action> {
        let mut comps = self.tx_components();
        for x in self.tree.all_objects() {
            comps.push(Box::new(BasicObject::new(
                self.tree.clone(),
                x,
                self.semantics[x.index()].clone(),
            )) as _);
        }
        comps.push(Box::new(SerialScheduler::new(self.tree.clone(), self.serial_config)) as _);
        System::new(comps)
    }

    /// Build the R/W Locking system: the same transaction automata, lock
    /// objects `M(X)` and the generic scheduler.
    pub fn concurrent_system(&self) -> System<Action> {
        let mut comps = self.tx_components();
        for x in self.tree.all_objects() {
            comps.push(Box::new(LockObject::new(
                self.tree.clone(),
                x,
                self.semantics[x.index()].clone(),
                self.lock_config,
            )) as _);
        }
        comps.push(Box::new(GenericScheduler::new(
            self.tree.clone(),
            self.generic_config,
        )) as _);
        System::new(comps)
    }

    /// Is `events` a schedule of the serial system? Replays it against
    /// fresh components; fails at the first event not enabled where it
    /// should be. This is the acceptance check used on serializer
    /// witnesses.
    ///
    /// The replay scheduler runs with `dedup_reports` off and aborts on so
    /// that any schedule the paper's serial scheduler accepts is accepted.
    pub fn is_serial_schedule(&self, events: &[Action]) -> Result<(), ReplayError> {
        let mut spec = self.clone();
        spec.serial_config = SchedulerConfig {
            dedup_reports: false,
            allow_aborts: true,
        };
        spec.serial_system().replay(events)
    }

    /// Is `events` a schedule of the R/W Locking system? (Replay check,
    /// with the scheduler's nondeterminism fully open.)
    pub fn is_concurrent_schedule(&self, events: &[Action]) -> Result<(), ReplayError> {
        let mut spec = self.clone();
        spec.generic_config = GenericSchedulerConfig {
            dedup_reports: false,
            dedup_informs: false,
            inform_only_relevant: false,
            ascending_informs: false,
            allow_aborts: true,
        };
        spec.concurrent_system().replay(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Value;
    use crate::semantics::StdSemantics;
    use crate::visibility::Fates;
    use crate::wellformed::{check_concurrent_sequence, check_serial_sequence};
    use ntx_automata::explore::random_walk;

    /// T0 ── t1 ── {r1, w1}, t2 ── {r2, w2}  on one register.
    fn spec() -> SystemSpec<StdSemantics> {
        let mut b = ntx_tree::TxTreeBuilder::new();
        let x = b.object("x");
        let t1 = b.internal(TxTree::ROOT, "t1");
        b.read(t1, "r1", x);
        b.write(t1, "w1", x, 10);
        let t2 = b.internal(TxTree::ROOT, "t2");
        b.read(t2, "r2", x);
        b.write(t2, "w2", x, 20);
        SystemSpec::new(Arc::new(b.build()), vec![StdSemantics::register(0)])
    }

    /// Simple deterministic LCG so the tests need no rand dependency here.
    fn lcg(seed: u64) -> impl FnMut(usize) -> usize {
        let mut s = seed
            .wrapping_mul(2862933555777941757)
            .wrapping_add(3037000493);
        move |n| {
            s = s.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            ((s >> 33) as usize) % n
        }
    }

    #[test]
    fn serial_schedules_are_well_formed_and_serial() {
        let spec = spec();
        for seed in 0..30 {
            let sched = random_walk(spec.serial_system(), 200, lcg(seed));
            check_serial_sequence(sched.as_slice(), &spec.tree)
                .unwrap_or_else(|e| panic!("seed {seed}: {e:?}\n{sched:?}"));
            // Lemma 5 + closure: the schedule replays as a serial schedule.
            spec.is_serial_schedule(sched.as_slice())
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{sched:?}"));
        }
    }

    #[test]
    fn lemma6_only_related_live_in_serial_schedules() {
        let spec = spec();
        for seed in 0..30 {
            let sched = random_walk(spec.serial_system(), 200, lcg(seed));
            // Check at every prefix.
            let mut fates = Fates::new();
            let mut live: Vec<TxId> = Vec::new();
            for a in sched.iter() {
                fates.absorb(a);
                live = spec.tree.all_tx().filter(|&t| fates.is_live(t)).collect();
                for (i, &a1) in live.iter().enumerate() {
                    for &b1 in &live[i + 1..] {
                        assert!(
                            spec.tree.related(a1, b1),
                            "unrelated live {a1},{b1} in serial schedule (seed {seed})"
                        );
                    }
                }
            }
            let _ = live;
        }
    }

    #[test]
    fn concurrent_schedules_are_well_formed() {
        let spec = spec();
        for seed in 0..30 {
            let sched = random_walk(spec.concurrent_system(), 400, lcg(seed));
            check_concurrent_sequence(sched.as_slice(), &spec.tree)
                .unwrap_or_else(|e| panic!("seed {seed}: {e:?}\n{sched:?}"));
            spec.is_concurrent_schedule(sched.as_slice())
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{sched:?}"));
        }
    }

    #[test]
    fn concurrent_system_can_interleave_siblings() {
        let spec = spec();
        // Find some schedule where both t1's and t2's subtrees have live
        // transactions simultaneously (impossible serially, Lemma 6).
        let mut found = false;
        for seed in 0..50 {
            let sched = random_walk(spec.concurrent_system(), 400, lcg(seed));
            let mut fates = Fates::new();
            for a in sched.iter() {
                fates.absorb(a);
                let t1 = TxId::from_index(1);
                let t2 = TxId::from_index(4);
                if fates.is_live(t1) && fates.is_live(t2) {
                    found = true;
                }
            }
        }
        assert!(found, "generic scheduler should interleave siblings");
    }

    #[test]
    fn serial_run_completes_root() {
        let spec = spec();
        let mut done = false;
        for seed in 0..50 {
            let mut spec2 = spec.clone();
            spec2.serial_config.allow_aborts = false;
            let sched = random_walk(spec2.serial_system(), 400, lcg(seed));
            let fates = Fates::scan(sched.as_slice());
            // With aborts off everything runs; the root's children commit.
            let t1 = TxId::from_index(1);
            let t2 = TxId::from_index(4);
            if fates.is_committed(t1) && fates.is_committed(t2) {
                done = true;
                // The second transaction's read must have observed the
                // serialised writes: check some REQUEST_COMMIT values exist.
                assert!(sched
                    .iter()
                    .any(|a| matches!(a, Action::RequestCommit(_, Value(_)))));
                break;
            }
        }
        assert!(done, "no seed drove both top-level transactions to commit");
    }

    #[test]
    fn replay_rejects_non_schedules() {
        let spec = spec();
        let t1 = TxId::from_index(1);
        // COMMIT before any request is not a serial schedule.
        let bogus = vec![Action::Commit(t1)];
        assert!(spec.is_serial_schedule(&bogus).is_err());
        // CREATE without REQUEST_CREATE is not a concurrent schedule.
        let bogus2 = vec![Action::Create(t1)];
        assert!(spec.is_concurrent_schedule(&bogus2).is_err());
    }

    #[test]
    fn program_default_covers_children() {
        let spec = spec();
        let t1 = TxId::from_index(1);
        let prog = spec.program_of(t1);
        assert_eq!(prog.waves.len(), 1);
        assert_eq!(prog.waves[0], spec.tree.children(t1).to_vec());
    }
}
