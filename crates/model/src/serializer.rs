//! The serializer: an executable rendering of the proof of Lemma 33.
//!
//! Lemma 33 is the paper's main technical result: for every concurrent
//! schedule `α` and every non-orphan transaction `T`, there is a *serial*
//! schedule `β` write-equivalent to `visible(α, T)` — and its proof shows
//! how to **construct** `β`, event by event, from witnesses for shorter
//! prefixes. This module maintains exactly that construction online:
//!
//! * a witness `β_T` is kept for every created, non-orphan transaction
//!   (plus `T₀`), represented as a list of indices into `α` — every witness
//!   event *is* an occurrence in `α`, so sequences are permutations by
//!   construction;
//! * each absorbed event `π` updates the affected witnesses following the
//!   proof's case analysis:
//!   1./2. outputs of transactions/objects and 6./7. reports append to the
//!   witnesses of every `T` that `transaction(π)` is visible to;
//!   3. `CREATE(T')` starts `β_{T'} = β_{parent(T')} · π`;
//!   4. `COMMIT(T')` appends for descendants of `T'`, and for the other
//!   descendants `T` of `T'' = parent(T')` splices
//!   `β_T ← γ · (β_{T'} − γ) · π · (β_T − γ)` with `γ = β_{T''}`;
//!   5. `ABORT(T')` splices `β_T ← γ · π · (β_T − γ)` and drops the
//!   witnesses of `T'`'s subtree (now orphans);
//!   `INFORM` events change no visibility and no witness.
//!
//! The witnesses are *claims*; [`crate::correctness`] verifies them (serial
//! replay + write-equivalence), which is how Theorem 34 is machine-checked
//! on every generated schedule. A deliberately broken lock object (ablation
//! A1) produces witnesses that fail verification — the checker is not
//! vacuous.

use crate::sync::Arc;
use std::collections::{BTreeMap, HashSet};

use ntx_tree::{TxId, TxTree};

use crate::action::Action;
use crate::visibility::Fates;

/// Online witness constructor for Lemma 33.
#[derive(Clone)]
pub struct Serializer {
    tree: Arc<TxTree>,
    events: Vec<Action>,
    fates: Fates,
    /// Witness `β_T` per tracked transaction, as indices into `events`.
    witnesses: BTreeMap<TxId, Vec<u32>>,
}

impl Serializer {
    /// Start serializing a schedule of the given system type.
    pub fn new(tree: Arc<TxTree>) -> Self {
        let mut witnesses = BTreeMap::new();
        witnesses.insert(TxTree::ROOT, Vec::new());
        Serializer {
            tree,
            events: Vec::new(),
            fates: Fates::new(),
            witnesses,
        }
    }

    /// The events absorbed so far (the concurrent schedule `α`).
    pub fn events(&self) -> &[Action] {
        &self.events
    }

    /// The transactions currently holding witnesses: created non-orphans
    /// plus `T₀`.
    pub fn tracked(&self) -> impl Iterator<Item = TxId> + '_ {
        self.witnesses.keys().copied()
    }

    /// The serial witness for `t`, as actions. `None` if `t` is untracked
    /// (never created, or an orphan).
    pub fn witness(&self, t: TxId) -> Option<Vec<Action>> {
        self.witnesses
            .get(&t)
            .map(|idxs| idxs.iter().map(|&i| self.events[i as usize]).collect())
    }

    /// The serial witness for `t` as indices into [`Serializer::events`].
    pub fn witness_indices(&self, t: TxId) -> Option<&[u32]> {
        self.witnesses.get(&t).map(|v| v.as_slice())
    }

    /// Absorb the next event of the concurrent schedule, updating the
    /// affected witnesses per the Lemma 33 case analysis.
    pub fn absorb(&mut self, a: Action) {
        let idx = self.events.len() as u32;
        self.events.push(a);
        self.fates.absorb(&a);

        // INFORM events are invisible to transactions: no witness changes.
        let Some(u) = a.transaction(&self.tree) else {
            return;
        };

        match a {
            Action::Create(t) => {
                // Case 3: π is the very first event of t's subtree; only
                // β_t changes. Orphans are not tracked.
                if self.fates.is_orphan(t, &self.tree) {
                    return;
                }
                let mut w = match self.tree.parent(t) {
                    None => self.witnesses[&TxTree::ROOT].clone(), // CREATE(T0)
                    Some(p) => self
                        .witnesses
                        .get(&p)
                        .unwrap_or_else(|| {
                            panic!("CREATE({t}) but parent {p} untracked — ill-formed input")
                        })
                        .clone(),
                };
                w.push(idx);
                self.witnesses.insert(t, w);
            }
            Action::Commit(tp) => {
                // Case 4. transaction(π) = T'' = parent(T'); every affected
                // T is a descendant of T'' (scheduler preconditions
                // guarantee T'' has not itself returned yet).
                let tpp = self.tree.parent(tp).expect("COMMIT(T0) never occurs");
                let Some(gamma) = self.witnesses.get(&tpp).cloned() else {
                    return; // T'' orphan: all affected T are orphans too.
                };
                let gamma_set: HashSet<u32> = gamma.iter().copied().collect();
                let beta_tp = self.witnesses.get(&tp).cloned().unwrap_or_default();
                let beta1: Vec<u32> = beta_tp
                    .iter()
                    .copied()
                    .filter(|i| !gamma_set.contains(i))
                    .collect();

                let affected: Vec<TxId> = self
                    .witnesses
                    .keys()
                    .copied()
                    .filter(|&t| self.fates.is_visible_to(tpp, t, &self.tree))
                    .collect();
                for t in affected {
                    debug_assert!(
                        self.tree.is_ancestor(tpp, t),
                        "COMMIT affects only descendants of the parent"
                    );
                    let w = self.witnesses.get_mut(&t).expect("affected are tracked");
                    if self.tree.is_ancestor(tp, t) {
                        // T a descendant of T' (including T'): append.
                        w.push(idx);
                    } else {
                        // Splice: γ · β₁ · π · β₂.
                        let beta2: Vec<u32> = w
                            .iter()
                            .copied()
                            .filter(|i| !gamma_set.contains(i))
                            .collect();
                        let mut next =
                            Vec::with_capacity(gamma.len() + beta1.len() + 1 + beta2.len());
                        next.extend_from_slice(&gamma);
                        next.extend_from_slice(&beta1);
                        next.push(idx);
                        next.extend_from_slice(&beta2);
                        *w = next;
                    }
                }
            }
            Action::Abort(tp) => {
                // Case 5: splice γ · π · (β_T − γ) for the non-orphan
                // descendants T of T'' = parent(T'); drop T'-subtree
                // witnesses (they are orphans now).
                let tpp = self.tree.parent(tp).expect("ABORT(T0) never occurs");
                let gamma_opt = self.witnesses.get(&tpp).cloned();
                if let Some(gamma) = gamma_opt {
                    let gamma_set: HashSet<u32> = gamma.iter().copied().collect();
                    let affected: Vec<TxId> = self
                        .witnesses
                        .keys()
                        .copied()
                        .filter(|&t| {
                            !self.tree.is_ancestor(tp, t)
                                && self.fates.is_visible_to(tpp, t, &self.tree)
                        })
                        .collect();
                    for t in affected {
                        debug_assert!(self.tree.is_ancestor(tpp, t));
                        let w = self.witnesses.get_mut(&t).expect("affected are tracked");
                        let beta1: Vec<u32> = w
                            .iter()
                            .copied()
                            .filter(|i| !gamma_set.contains(i))
                            .collect();
                        let mut next = Vec::with_capacity(gamma.len() + 1 + beta1.len());
                        next.extend_from_slice(&gamma);
                        next.push(idx);
                        next.extend_from_slice(&beta1);
                        *w = next;
                    }
                }
                // Remove the new orphans.
                let doomed: Vec<TxId> = self
                    .witnesses
                    .keys()
                    .copied()
                    .filter(|&t| self.tree.is_ancestor(tp, t))
                    .collect();
                for t in doomed {
                    self.witnesses.remove(&t);
                }
            }
            _ => {
                // Cases 1, 2, 6, 7: append to the witness of every tracked
                // T that transaction(π) is visible to.
                let affected: Vec<TxId> = self
                    .witnesses
                    .keys()
                    .copied()
                    .filter(|&t| self.fates.is_visible_to(u, t, &self.tree))
                    .collect();
                for t in affected {
                    self.witnesses.get_mut(&t).expect("tracked").push(idx);
                }
            }
        }
    }

    /// Absorb a whole schedule.
    pub fn absorb_all(&mut self, events: &[Action]) {
        for a in events {
            self.absorb(*a);
        }
    }

    /// Fate information for the absorbed schedule.
    pub fn fates(&self) -> &Fates {
        &self.fates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Value;
    use crate::visibility::visible;
    use ntx_tree::TxTreeBuilder;

    /// T0 ── p ── a (write), q ── b (write), same object.
    fn fix() -> (Arc<TxTree>, TxId, TxId, TxId, TxId) {
        let mut b = TxTreeBuilder::new();
        let x = b.object("x");
        let p = b.internal(TxTree::ROOT, "p");
        let a = b.write(p, "a", x, 1);
        let q = b.internal(TxTree::ROOT, "q");
        let bb = b.write(q, "b", x, 2);
        (Arc::new(b.build()), p, a, q, bb)
    }

    #[test]
    fn create_starts_witness_from_parent() {
        let (tree, p, ..) = fix();
        let mut s = Serializer::new(tree);
        s.absorb(Action::Create(TxTree::ROOT));
        s.absorb(Action::RequestCreate(p));
        s.absorb(Action::Create(p));
        assert_eq!(
            s.witness(p).unwrap(),
            vec![
                Action::Create(TxTree::ROOT),
                Action::RequestCreate(p),
                Action::Create(p)
            ]
        );
    }

    #[test]
    fn child_work_invisible_until_commit() {
        let (tree, p, a, ..) = fix();
        let mut s = Serializer::new(tree.clone());
        for ev in [
            Action::Create(TxTree::ROOT),
            Action::RequestCreate(p),
            Action::Create(p),
            Action::RequestCreate(a),
            Action::Create(a),
            Action::RequestCommit(a, Value(1)),
        ] {
            s.absorb(ev);
        }
        // a's CREATE and REQUEST_COMMIT are not yet in p's witness.
        let wp = s.witness(p).unwrap();
        assert!(!wp.contains(&Action::Create(a)));
        assert!(!wp.contains(&Action::RequestCommit(a, Value(1))));
        // They are in a's own witness.
        let wa = s.witness(a).unwrap();
        assert!(wa.contains(&Action::RequestCommit(a, Value(1))));
        // After COMMIT(a) the splice pulls them into p's witness.
        s.absorb(Action::Commit(a));
        let wp = s.witness(p).unwrap();
        assert!(wp.contains(&Action::Create(a)));
        assert!(wp.contains(&Action::RequestCommit(a, Value(1))));
        assert!(wp.contains(&Action::Commit(a)));
    }

    #[test]
    fn abort_drops_subtree_witnesses_and_records_abort() {
        let (tree, p, a, ..) = fix();
        let mut s = Serializer::new(tree.clone());
        for ev in [
            Action::Create(TxTree::ROOT),
            Action::RequestCreate(p),
            Action::Create(p),
            Action::RequestCreate(a),
            Action::Create(a),
            Action::Abort(a),
        ] {
            s.absorb(ev);
        }
        assert!(s.witness(a).is_none(), "a is an orphan");
        let wp = s.witness(p).unwrap();
        assert!(wp.contains(&Action::Abort(a)));
        assert!(
            !wp.contains(&Action::Create(a)),
            "orphan work stays invisible"
        );
        // The ABORT lands at the end of the current witness.
        let pos_abort = wp.iter().position(|e| *e == Action::Abort(a)).unwrap();
        assert_eq!(pos_abort, wp.len() - 1);
    }

    #[test]
    fn witness_events_subset_of_visible() {
        let (tree, p, a, q, bb) = fix();
        let mut s = Serializer::new(tree.clone());
        let sched = [
            Action::Create(TxTree::ROOT),
            Action::RequestCreate(p),
            Action::RequestCreate(q),
            Action::Create(p),
            Action::Create(q),
            Action::RequestCreate(a),
            Action::Create(a),
            Action::RequestCommit(a, Value(1)),
            Action::Commit(a),
            Action::ReportCommit(a, Value(1)),
            Action::RequestCommit(p, Value(1)),
            Action::Commit(p),
            Action::RequestCreate(bb),
            Action::Create(bb),
            Action::RequestCommit(bb, Value(2)),
        ];
        s.absorb_all(&sched);
        for t in [TxTree::ROOT, p, q, a, bb] {
            let Some(w) = s.witness(t) else { continue };
            let mut vis = visible(s.events(), &tree, t);
            let mut ws = w.clone();
            vis.sort_by_key(|e| format!("{e:?}"));
            ws.sort_by_key(|e| format!("{e:?}"));
            assert_eq!(ws, vis, "witness of {t} is a permutation of visible(α,{t})");
        }
    }

    #[test]
    fn orphan_create_not_tracked() {
        let (tree, p, a, ..) = fix();
        let mut s = Serializer::new(tree.clone());
        for ev in [
            Action::Create(TxTree::ROOT),
            Action::RequestCreate(p),
            Action::Create(p),
            Action::RequestCreate(a),
            Action::Abort(p),
            // Orphan activity: a is created although p aborted.
            Action::Create(a),
        ] {
            s.absorb(ev);
        }
        assert!(s.witness(p).is_none());
        assert!(s.witness(a).is_none());
        // Root still tracked and saw the abort.
        let w0 = s.witness(TxTree::ROOT).unwrap();
        assert!(w0.contains(&Action::Abort(p)));
    }

    #[test]
    fn inform_events_do_not_touch_witnesses() {
        let (tree, p, ..) = fix();
        let x = ntx_tree::ObjectId::from_index(0);
        let mut s = Serializer::new(tree);
        s.absorb(Action::Create(TxTree::ROOT));
        let before = s.witness(TxTree::ROOT).unwrap();
        s.absorb(Action::InformAbort(x, p));
        assert_eq!(s.witness(TxTree::ROOT).unwrap(), before);
        assert_eq!(s.events().len(), 2);
    }
}
