//! Basic object automata (§3.2).
//!
//! A basic object `X` is the serial system's data component: one automaton
//! per object (not per access). Its inputs are `CREATE(T)` for accesses `T`
//! to `X` (think: operation invocation) and its outputs are
//! `REQUEST_COMMIT(T, v)` (the response). The implementation follows the
//! example object of §4.3 verbatim: the state is a set of *pending* accesses
//! plus an instance of an abstract data type; an atomic step picks a pending
//! access, applies its function to the instance, and responds.
//!
//! That construction makes the §4.3 semantic conditions hold by design:
//! `CREATE` only touches the pending set (conditions 1 and 2), and a read
//! access must not change the instance (condition 3) — enforced against the
//! [`crate::semantics::ObjectSemantics`] contract with a debug assertion.

use crate::sync::Arc;
use std::collections::BTreeSet;

use ntx_automata::{Automaton, BoxedAutomaton};
use ntx_tree::{AccessKind, ObjectId, TxId, TxTree};

use crate::action::{Action, Value};
use crate::semantics::ObjectSemantics;

/// The basic object automaton for one object.
#[derive(Clone)]
pub struct BasicObject<S: ObjectSemantics> {
    tree: Arc<TxTree>,
    x: ObjectId,
    semantics: S,
    // --- state ---
    pending: BTreeSet<TxId>,
    responded: BTreeSet<TxId>,
    data: S::State,
}

impl<S: ObjectSemantics> BasicObject<S> {
    /// Build the automaton for object `x` with the given data-type
    /// semantics.
    pub fn new(tree: Arc<TxTree>, x: ObjectId, semantics: S) -> Self {
        let data = semantics.initial();
        BasicObject {
            tree,
            x,
            semantics,
            pending: BTreeSet::new(),
            responded: BTreeSet::new(),
            data,
        }
    }

    /// The response value the object would give access `t` in the current
    /// state.
    fn response(&self, t: TxId) -> Value {
        let info = self.tree.access(t).expect("pending entries are accesses");
        self.semantics.apply(&self.data, &info).1
    }

    /// Current abstract-data-type instance (used by checkers and tests).
    pub fn data(&self) -> &S::State {
        &self.data
    }
}

impl<S: ObjectSemantics> Automaton for BasicObject<S> {
    type Action = Action;

    fn name(&self) -> String {
        format!("object-{}", self.x)
    }

    fn is_operation_of(&self, a: &Action) -> bool {
        a.is_operation_of_basic_object(self.x, &self.tree)
    }

    fn is_output_of(&self, a: &Action) -> bool {
        matches!(*a, Action::RequestCommit(t, _)
            if self.tree.access(t).is_some_and(|i| i.object == self.x))
    }

    fn enabled_outputs(&self, buf: &mut Vec<Action>) {
        for &t in &self.pending {
            buf.push(Action::RequestCommit(t, self.response(t)));
        }
    }

    fn is_enabled(&self, a: &Action) -> bool {
        match *a {
            Action::RequestCommit(t, v) => self.pending.contains(&t) && v == self.response(t),
            _ => false,
        }
    }

    fn apply(&mut self, a: &Action) {
        match *a {
            Action::Create(t) => {
                // A repeated CREATE violates well-formedness; the paper
                // leaves behaviour unconstrained there. We ignore repeats so
                // an access can never respond twice.
                if !self.responded.contains(&t) {
                    self.pending.insert(t);
                }
            }
            Action::RequestCommit(t, _) => {
                assert!(
                    self.pending.remove(&t),
                    "response for non-pending access {t}"
                );
                self.responded.insert(t);
                let info = self.tree.access(t).expect("accesses only");
                let (next, _) = self.semantics.apply(&self.data, &info);
                debug_assert!(
                    info.kind != AccessKind::Read || next == self.data,
                    "read access {t} changed object {} state",
                    self.x
                );
                self.data = next;
            }
            _ => unreachable!("foreign action {a:?} routed to object {}", self.x),
        }
    }

    fn clone_boxed(&self) -> BoxedAutomaton<Action> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::StdSemantics;
    use ntx_tree::TxTreeBuilder;

    fn setup() -> (Arc<TxTree>, ObjectId, TxId, TxId, TxId) {
        let mut b = TxTreeBuilder::new();
        let x = b.object("x");
        let t = b.internal(TxTree::ROOT, "t");
        let r = b.read(t, "r", x);
        let w1 = b.write(t, "w1", x, 10);
        let w2 = b.write(t, "w2", x, 20);
        (Arc::new(b.build()), x, r, w1, w2)
    }

    fn outputs<S: ObjectSemantics>(o: &BasicObject<S>) -> Vec<Action> {
        let mut buf = Vec::new();
        o.enabled_outputs(&mut buf);
        buf
    }

    #[test]
    fn responds_to_pending_accesses_only() {
        let (tree, x, r, w1, _) = setup();
        let mut o = BasicObject::new(tree, x, StdSemantics::register(0));
        assert!(outputs(&o).is_empty());
        o.apply(&Action::Create(r));
        assert_eq!(outputs(&o), vec![Action::RequestCommit(r, Value(0))]);
        o.apply(&Action::Create(w1));
        assert_eq!(outputs(&o).len(), 2);
        assert!(o.is_enabled(&Action::RequestCommit(w1, Value(10))));
        assert!(!o.is_enabled(&Action::RequestCommit(w1, Value(11))));
    }

    #[test]
    fn response_applies_semantics() {
        let (tree, x, r, w1, w2) = setup();
        let mut o = BasicObject::new(tree, x, StdSemantics::register(0));
        o.apply(&Action::Create(w1));
        o.apply(&Action::RequestCommit(w1, Value(10)));
        o.apply(&Action::Create(r));
        // The read now sees 10.
        assert_eq!(outputs(&o), vec![Action::RequestCommit(r, Value(10))]);
        o.apply(&Action::RequestCommit(r, Value(10)));
        o.apply(&Action::Create(w2));
        o.apply(&Action::RequestCommit(w2, Value(20)));
        assert_eq!(o.data(), &crate::semantics::StdState::Int(20));
    }

    #[test]
    fn duplicate_create_after_response_ignored() {
        let (tree, x, _, w1, _) = setup();
        let mut o = BasicObject::new(tree, x, StdSemantics::register(0));
        o.apply(&Action::Create(w1));
        o.apply(&Action::RequestCommit(w1, Value(10)));
        o.apply(&Action::Create(w1));
        assert!(outputs(&o).is_empty(), "no second response possible");
    }

    #[test]
    fn classification() {
        let (tree, x, r, ..) = setup();
        let o = BasicObject::new(tree.clone(), x, StdSemantics::register(0));
        assert!(o.is_operation_of(&Action::Create(r)));
        assert!(o.is_operation_of(&Action::RequestCommit(r, Value(0))));
        assert!(!o.is_output_of(&Action::Create(r)));
        assert!(o.is_output_of(&Action::RequestCommit(r, Value(0))));
        // Internal-transaction operations are not the object's.
        let t = tree.parent(r).unwrap();
        assert!(!o.is_operation_of(&Action::Create(t)));
        assert!(!o.is_operation_of(&Action::InformCommit(x, t)));
    }

    #[test]
    #[should_panic(expected = "non-pending access")]
    fn response_without_create_panics() {
        let (tree, x, r, ..) = setup();
        let mut o = BasicObject::new(tree, x, StdSemantics::register(0));
        o.apply(&Action::RequestCommit(r, Value(0)));
    }
}
