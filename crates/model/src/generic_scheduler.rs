//! The generic scheduler (§5.2).
//!
//! The generic scheduler drives R/W Locking systems. It is far more
//! permissive than the serial scheduler: siblings run concurrently, and any
//! requested transaction — even one that has already performed work — may be
//! unilaterally aborted. It additionally emits `INFORM_COMMIT` /
//! `INFORM_ABORT` events telling each lock-managing object `M(X)` about the
//! fates of transactions, with arbitrary delay. The pre/postconditions are
//! transcribed from the paper.

use crate::sync::Arc;
use std::collections::{BTreeMap, BTreeSet};

use ntx_automata::{Automaton, BoxedAutomaton};
use ntx_tree::{ObjectId, TxId, TxTree};

use crate::action::{Action, Value};

/// Knobs restricting the generic scheduler's nondeterminism so that
/// executions are finite and exploration tractable. Every restriction only
/// *removes* schedules: all schedules of the restricted automaton remain
/// schedules of the paper's scheduler.
#[derive(Clone, Copy, Debug)]
pub struct GenericSchedulerConfig {
    /// Deliver each report at most once.
    pub dedup_reports: bool,
    /// Emit each `INFORM_…_AT(X)OF(T)` at most once per `(X, T)`.
    pub dedup_informs: bool,
    /// Only inform object `X` about transactions whose subtree contains an
    /// access to `X` (informing unrelated objects is a no-op at `M(X)`).
    pub inform_only_relevant: bool,
    /// Deliver `INFORM_COMMIT_AT(X)OF(T)` only after the inform for every
    /// committed relevant child of `T` was delivered (child-first order).
    ///
    /// The paper's scheduler may deliver informs in any order and any
    /// number of times; an out-of-order inform is simply a no-op at `M(X)`
    /// and is repeated later. With `dedup_informs` that repetition is gone,
    /// and an out-of-order inform would strand locks at an intermediate
    /// ancestor forever — a liveness (never a safety) loss. Child-first
    /// ordering restores liveness while remaining a restriction of the
    /// paper's nondeterminism.
    pub ascending_informs: bool,
    /// Allow spontaneous `ABORT`s of requested transactions.
    pub allow_aborts: bool,
}

impl Default for GenericSchedulerConfig {
    fn default() -> Self {
        GenericSchedulerConfig {
            dedup_reports: true,
            dedup_informs: true,
            inform_only_relevant: true,
            ascending_informs: true,
            allow_aborts: true,
        }
    }
}

/// The generic scheduler automaton.
#[derive(Clone)]
pub struct GenericScheduler {
    tree: Arc<TxTree>,
    config: GenericSchedulerConfig,
    // --- state (§5.2) ---
    create_requested: BTreeSet<TxId>,
    created: BTreeSet<TxId>,
    commit_requested: BTreeMap<TxId, BTreeSet<Value>>,
    committed: BTreeSet<TxId>,
    aborted: BTreeSet<TxId>,
    returned: BTreeSet<TxId>,
    // --- dedup bookkeeping (not part of the paper's state) ---
    reported: BTreeSet<TxId>,
    informed: BTreeSet<(ObjectId, TxId)>,
    /// Cache: objects relevant to each transaction's subtree.
    relevant: Arc<Vec<Vec<ObjectId>>>,
}

impl GenericScheduler {
    /// A generic scheduler for the given system type.
    pub fn new(tree: Arc<TxTree>, config: GenericSchedulerConfig) -> Self {
        let mut relevant: Vec<BTreeSet<ObjectId>> = vec![BTreeSet::new(); tree.len()];
        // For each access, mark its object on every ancestor.
        for t in tree.all_tx() {
            if let Some(info) = tree.access(t) {
                for anc in tree.ancestors(t) {
                    relevant[anc.index()].insert(info.object);
                }
            }
        }
        let relevant = Arc::new(
            relevant
                .into_iter()
                .map(|s| s.into_iter().collect::<Vec<_>>())
                .collect::<Vec<_>>(),
        );
        let mut create_requested = BTreeSet::new();
        create_requested.insert(TxTree::ROOT);
        GenericScheduler {
            tree,
            config,
            create_requested,
            created: BTreeSet::new(),
            commit_requested: BTreeMap::new(),
            committed: BTreeSet::new(),
            aborted: BTreeSet::new(),
            returned: BTreeSet::new(),
            reported: BTreeSet::new(),
            informed: BTreeSet::new(),
            relevant,
        }
    }

    fn create_enabled(&self, t: TxId) -> bool {
        self.create_requested.contains(&t) && !self.created.contains(&t)
    }

    fn commit_enabled(&self, t: TxId) -> bool {
        t != TxTree::ROOT
            && self.commit_requested.contains_key(&t)
            && !self.returned.contains(&t)
            && self
                .tree
                .children(t)
                .iter()
                .filter(|c| self.create_requested.contains(c))
                .all(|c| self.returned.contains(c))
    }

    fn abort_enabled(&self, t: TxId) -> bool {
        self.config.allow_aborts
            && t != TxTree::ROOT
            && self.create_requested.contains(&t)
            && !self.returned.contains(&t)
    }

    fn report_commit_enabled(&self, t: TxId, v: Value) -> bool {
        t != TxTree::ROOT
            && self.committed.contains(&t)
            && self
                .commit_requested
                .get(&t)
                .is_some_and(|vs| vs.contains(&v))
            && !(self.config.dedup_reports && self.reported.contains(&t))
    }

    fn report_abort_enabled(&self, t: TxId) -> bool {
        t != TxTree::ROOT
            && self.aborted.contains(&t)
            && !(self.config.dedup_reports && self.reported.contains(&t))
    }

    fn inform_allowed(&self, x: ObjectId, t: TxId) -> bool {
        (!self.config.inform_only_relevant || self.relevant[t.index()].contains(&x))
            && !(self.config.dedup_informs && self.informed.contains(&(x, t)))
    }

    fn inform_commit_enabled(&self, x: ObjectId, t: TxId) -> bool {
        if t == TxTree::ROOT || !self.committed.contains(&t) || !self.inform_allowed(x, t) {
            return false;
        }
        if self.config.ascending_informs {
            for &c in self.tree.children(t) {
                if self.committed.contains(&c)
                    && self.relevant[c.index()].contains(&x)
                    && !self.informed.contains(&(x, c))
                {
                    return false;
                }
            }
        }
        true
    }

    fn inform_abort_enabled(&self, x: ObjectId, t: TxId) -> bool {
        t != TxTree::ROOT && self.aborted.contains(&t) && self.inform_allowed(x, t)
    }
}

impl Automaton for GenericScheduler {
    type Action = Action;

    fn name(&self) -> String {
        "generic-scheduler".to_owned()
    }

    fn is_operation_of(&self, _a: &Action) -> bool {
        true // every operation of a concurrent system touches the scheduler
    }

    fn is_output_of(&self, a: &Action) -> bool {
        !matches!(a, Action::RequestCreate(_) | Action::RequestCommit(..))
    }

    fn enabled_outputs(&self, buf: &mut Vec<Action>) {
        for &t in &self.create_requested {
            if self.create_enabled(t) {
                buf.push(Action::Create(t));
            }
            if self.abort_enabled(t) {
                buf.push(Action::Abort(t));
            }
        }
        for &t in self.commit_requested.keys() {
            if self.commit_enabled(t) {
                buf.push(Action::Commit(t));
            }
        }
        for &t in &self.committed {
            if let Some(vs) = self.commit_requested.get(&t) {
                for &v in vs {
                    if self.report_commit_enabled(t, v) {
                        buf.push(Action::ReportCommit(t, v));
                    }
                }
            }
            for &x in &self.relevant[t.index()] {
                if self.inform_commit_enabled(x, t) {
                    buf.push(Action::InformCommit(x, t));
                }
            }
            if !self.config.inform_only_relevant {
                for x in (0..self.tree.object_count()).map(ObjectId::from_index) {
                    if !self.relevant[t.index()].contains(&x) && self.inform_commit_enabled(x, t) {
                        buf.push(Action::InformCommit(x, t));
                    }
                }
            }
        }
        for &t in &self.aborted {
            if self.report_abort_enabled(t) {
                buf.push(Action::ReportAbort(t));
            }
            for &x in &self.relevant[t.index()] {
                if self.inform_abort_enabled(x, t) {
                    buf.push(Action::InformAbort(x, t));
                }
            }
            if !self.config.inform_only_relevant {
                for x in (0..self.tree.object_count()).map(ObjectId::from_index) {
                    if !self.relevant[t.index()].contains(&x) && self.inform_abort_enabled(x, t) {
                        buf.push(Action::InformAbort(x, t));
                    }
                }
            }
        }
    }

    fn is_enabled(&self, a: &Action) -> bool {
        match *a {
            Action::Create(t) => self.create_enabled(t),
            Action::Commit(t) => self.commit_enabled(t),
            Action::Abort(t) => self.abort_enabled(t),
            Action::ReportCommit(t, v) => self.report_commit_enabled(t, v),
            Action::ReportAbort(t) => self.report_abort_enabled(t),
            Action::InformCommit(x, t) => self.inform_commit_enabled(x, t),
            Action::InformAbort(x, t) => self.inform_abort_enabled(x, t),
            _ => false,
        }
    }

    fn apply(&mut self, a: &Action) {
        match *a {
            Action::RequestCreate(t) => {
                self.create_requested.insert(t);
            }
            Action::RequestCommit(t, v) => {
                self.commit_requested.entry(t).or_default().insert(v);
            }
            Action::Create(t) => {
                self.created.insert(t);
            }
            Action::Commit(t) => {
                self.committed.insert(t);
                self.returned.insert(t);
            }
            Action::Abort(t) => {
                self.aborted.insert(t);
                self.returned.insert(t);
            }
            Action::ReportCommit(t, _) | Action::ReportAbort(t) => {
                self.reported.insert(t);
            }
            Action::InformCommit(x, t) | Action::InformAbort(x, t) => {
                self.informed.insert((x, t));
            }
        }
    }

    fn clone_boxed(&self) -> BoxedAutomaton<Action> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntx_tree::TxTreeBuilder;

    fn setup() -> (Arc<TxTree>, TxId, TxId, TxId, ObjectId) {
        let mut b = TxTreeBuilder::new();
        let x = b.object("x");
        let t1 = b.internal(TxTree::ROOT, "t1");
        let a1 = b.write(t1, "a1", x, 1);
        let t2 = b.internal(TxTree::ROOT, "t2");
        (Arc::new(b.build()), t1, t2, a1, x)
    }

    #[test]
    fn siblings_may_run_concurrently() {
        let (tree, t1, t2, ..) = setup();
        let mut s = GenericScheduler::new(tree, GenericSchedulerConfig::default());
        s.apply(&Action::Create(TxTree::ROOT));
        s.apply(&Action::RequestCreate(t1));
        s.apply(&Action::RequestCreate(t2));
        s.apply(&Action::Create(t1));
        // Unlike the serial scheduler, t2 does not wait for t1.
        assert!(s.is_enabled(&Action::Create(t2)));
    }

    #[test]
    fn created_transactions_can_abort() {
        let (tree, t1, ..) = setup();
        let mut s = GenericScheduler::new(tree, GenericSchedulerConfig::default());
        s.apply(&Action::Create(TxTree::ROOT));
        s.apply(&Action::RequestCreate(t1));
        s.apply(&Action::Create(t1));
        assert!(
            s.is_enabled(&Action::Abort(t1)),
            "generic scheduler aborts after work"
        );
        s.apply(&Action::Abort(t1));
        assert!(!s.is_enabled(&Action::Abort(t1)), "no double return");
        assert!(!s.is_enabled(&Action::Commit(t1)));
    }

    #[test]
    fn informs_follow_fate_and_dedup() {
        let (tree, t1, _, a1, x) = setup();
        let mut s = GenericScheduler::new(tree, GenericSchedulerConfig::default());
        for ev in [
            Action::Create(TxTree::ROOT),
            Action::RequestCreate(t1),
            Action::Create(t1),
            Action::RequestCreate(a1),
            Action::Create(a1),
            Action::RequestCommit(a1, Value(1)),
        ] {
            s.apply(&ev);
        }
        assert!(
            !s.is_enabled(&Action::InformCommit(x, a1)),
            "a1 not committed yet"
        );
        s.apply(&Action::Commit(a1));
        assert!(s.is_enabled(&Action::InformCommit(x, a1)));
        assert!(!s.is_enabled(&Action::InformAbort(x, a1)));
        s.apply(&Action::InformCommit(x, a1));
        assert!(!s.is_enabled(&Action::InformCommit(x, a1)), "deduplicated");
    }

    #[test]
    fn inform_only_relevant_restriction() {
        let (tree, _, t2, _, x) = setup();
        let mut s = GenericScheduler::new(tree.clone(), GenericSchedulerConfig::default());
        for ev in [
            Action::Create(TxTree::ROOT),
            Action::RequestCreate(t2),
            Action::Create(t2),
            Action::RequestCommit(t2, Value(0)),
            Action::Commit(t2),
        ] {
            s.apply(&ev);
        }
        // t2's subtree has no accesses, so informing X about it is filtered.
        assert!(!s.is_enabled(&Action::InformCommit(x, t2)));
        let mut s2 = GenericScheduler::new(
            tree,
            GenericSchedulerConfig {
                inform_only_relevant: false,
                ..Default::default()
            },
        );
        for ev in [
            Action::Create(TxTree::ROOT),
            Action::RequestCreate(t2),
            Action::Create(t2),
            Action::RequestCommit(t2, Value(0)),
            Action::Commit(t2),
        ] {
            s2.apply(&ev);
        }
        assert!(s2.is_enabled(&Action::InformCommit(x, t2)));
        let mut buf = Vec::new();
        s2.enabled_outputs(&mut buf);
        assert!(buf.contains(&Action::InformCommit(x, t2)));
    }

    #[test]
    fn commit_waits_for_requested_children() {
        let (tree, t1, _, a1, _) = setup();
        let mut s = GenericScheduler::new(tree, GenericSchedulerConfig::default());
        for ev in [
            Action::Create(TxTree::ROOT),
            Action::RequestCreate(t1),
            Action::Create(t1),
            Action::RequestCreate(a1),
            Action::RequestCommit(t1, Value(0)),
        ] {
            s.apply(&ev);
        }
        assert!(!s.is_enabled(&Action::Commit(t1)));
        s.apply(&Action::Abort(a1));
        assert!(s.is_enabled(&Action::Commit(t1)));
    }

    #[test]
    fn enumeration_matches_is_enabled() {
        let (tree, t1, t2, a1, x) = setup();
        let mut s = GenericScheduler::new(tree, GenericSchedulerConfig::default());
        let drive = [
            Action::Create(TxTree::ROOT),
            Action::RequestCreate(t1),
            Action::RequestCreate(t2),
            Action::Create(t1),
            Action::Create(t2),
            Action::RequestCreate(a1),
            Action::Create(a1),
            Action::RequestCommit(a1, Value(1)),
            Action::Commit(a1),
            Action::InformCommit(x, a1),
            Action::Abort(t2),
            Action::ReportAbort(t2),
        ];
        for ev in drive {
            let mut en = Vec::new();
            s.enabled_outputs(&mut en);
            for candidate in [
                Action::Create(t1),
                Action::Create(t2),
                Action::Create(a1),
                Action::Commit(a1),
                Action::Abort(t2),
                Action::InformCommit(x, a1),
                Action::InformAbort(x, t2),
                Action::ReportAbort(t2),
                Action::ReportCommit(a1, Value(1)),
            ] {
                assert_eq!(
                    en.contains(&candidate),
                    s.is_enabled(&candidate),
                    "at {ev:?}"
                );
            }
            s.apply(&ev);
        }
    }
}
