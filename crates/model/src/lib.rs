//! # ntx-model — the executable formal model of the PODS 1987 paper
//!
//! This crate is the primary contribution of the reproduction: an executable
//! rendering of every definition in Fekete, Lynch, Merritt & Weihl, *Nested
//! Transactions and Read/Write Locking* (PODS 1987), plus a machine-checked
//! version of its main theorem.
//!
//! ## Map from the paper
//!
//! | Paper | Here |
//! |---|---|
//! | operations (§3, §5) | [`Action`], [`action`] |
//! | well-formedness (§3.1, §3.2, §5.1) | [`wellformed`] |
//! | transaction automata (§3.1) | [`transaction`] |
//! | basic objects (§3.2) and the example object of §4.3 | [`object`], [`semantics`] |
//! | serial scheduler (§3.3) | [`serial_scheduler`] |
//! | serial systems, visibility, orphans (§3.4) | [`system`], [`visibility`] |
//! | serial correctness (§3.5) | [`correctness`] |
//! | equieffectiveness, transparency, `write(α)` (§4) | [`equieffective`] |
//! | R/W Locking objects `M(X)` — Moss' algorithm (§5.1) | [`lock_object`] |
//! | generic scheduler (§5.2) | [`generic_scheduler`] |
//! | R/W Locking systems (§5.3) | [`system`] |
//! | Lemma 33 / Theorem 34 | [`serializer`], [`correctness`] |
//!
//! ## The headline result, executably
//!
//! Theorem 34 states that every schedule of a R/W Locking system is
//! *serially correct* for every non-orphan transaction: the transaction
//! cannot tell it ran concurrently. The paper's proof of Lemma 33 is
//! constructive — it rearranges the concurrent schedule into a
//! write-equivalent serial one. [`serializer::Serializer`] implements that
//! construction event-by-event, and [`correctness`] verifies the produced
//! witnesses: each must *be* a serial schedule (replayed against the serial
//! system) and be write-equivalent to `visible(α, T)`. Running this over
//! randomly generated and exhaustively enumerated concurrent schedules is
//! experiment E1/E2 of the reproduction.

pub mod action;
pub mod correctness;
pub mod equieffective;
pub mod generic_scheduler;
pub mod lock_object;
pub mod object;
pub mod semantics;
pub mod serial_scheduler;
pub mod serializer;
pub mod system;
pub mod transaction;
pub mod visibility;
pub mod wellformed;

pub(crate) mod sync;

pub use action::{Action, Value};
pub use semantics::{validate_semantics, ObjectSemantics, StdSemantics, StdState};
pub use system::SystemSpec;
