//! The single import point for synchronisation primitives.
//!
//! The model crate is single-threaded math — `Arc` is used purely for
//! cheap structural sharing of immutable trees — but it follows the same
//! shim discipline as the runtime crates (R1 in `ntx-lint`): one exempt
//! file imports from `std::sync`, every other module imports from here,
//! so a future model-checking build has exactly one place to swap.

pub(crate) use std::sync::Arc;
