//! Abstract data types backing basic objects.
//!
//! §4.3 of the paper describes the canonical basic object: a set of pending
//! accesses plus "an instance of an abstract data type"; executing a pending
//! access applies the corresponding function to the instance and returns a
//! value. The semantic conditions require read accesses to be *transparent*
//! — as far as later operations can detect, they leave the instance
//! unchanged. We make that structural: an [`ObjectSemantics`] implementation
//! must not change the state on accesses declared [`AccessKind::Read`], and
//! the basic-object automaton enforces it with a debug assertion (there is
//! also a property-test helper, [`check_read_transparency`]).

use std::collections::BTreeSet;
use std::fmt;

use ntx_tree::{AccessInfo, AccessKind};

use crate::action::Value;

/// The abstract data type of a basic object.
///
/// `opcode`/`param` of the [`AccessInfo`] select and parameterise the
/// operation; implementations define their own opcode tables.
pub trait ObjectSemantics: Clone + fmt::Debug + Send + 'static {
    /// State of one instance of the data type.
    type State: Clone + Eq + std::hash::Hash + fmt::Debug + Send;

    /// The initial instance.
    fn initial(&self) -> Self::State;

    /// Apply one access operation, returning the next state and the return
    /// value. **Must** return a state equal to `st` when
    /// `access.kind == AccessKind::Read`.
    fn apply(&self, st: &Self::State, access: &AccessInfo) -> (Self::State, Value);
}

/// Check (for tests) that `sem` treats every read access in `accesses` as
/// transparent along the given access sequence: applying the reads leaves
/// the state reached by the writes alone unchanged at every prefix.
pub fn check_read_transparency<S: ObjectSemantics>(sem: &S, accesses: &[AccessInfo]) -> bool {
    let mut with_reads = sem.initial();
    let mut writes_only = sem.initial();
    for a in accesses {
        let (next, _) = sem.apply(&with_reads, a);
        if a.kind == AccessKind::Read && next != with_reads {
            return false;
        }
        with_reads = next;
        if a.kind == AccessKind::Write {
            writes_only = sem.apply(&writes_only, a).0;
        }
        if with_reads != writes_only {
            return false;
        }
    }
    true
}

/// Exhaustively validate the §4.3 semantic conditions for a user-supplied
/// semantics over a finite access universe: along **every** access sequence
/// of length ≤ `max_len`,
///
/// * read accesses must be transparent (condition 3: the state after a
///   read equals the state before it), and
/// * `apply` must be a pure function (the basic object's atomic step
///   requires the response to be determined by the state).
///
/// Conditions 1 and 2 (transparency and reorderability of `CREATE`) hold
/// structurally for [`crate::object::BasicObject`], which implements the
/// paper's example object: `CREATE` only touches the pending set.
///
/// Cost is `|universe|^max_len`; intended for registering custom semantics
/// in tests.
pub fn validate_semantics<S: ObjectSemantics>(
    sem: &S,
    universe: &[AccessInfo],
    max_len: usize,
) -> Result<(), String> {
    fn go<S: ObjectSemantics>(
        sem: &S,
        st: &S::State,
        universe: &[AccessInfo],
        depth: usize,
    ) -> Result<(), String> {
        if depth == 0 {
            return Ok(());
        }
        for (i, a) in universe.iter().enumerate() {
            let (next, v) = sem.apply(st, a);
            let (next2, v2) = sem.apply(st, a);
            if next != next2 || v != v2 {
                return Err(format!(
                    "apply is not a pure function at access #{i} ({a:?})"
                ));
            }
            if a.kind == AccessKind::Read && next != *st {
                return Err(format!(
                    "condition 3 violated: read access #{i} ({a:?}) changed the state"
                ));
            }
            go(sem, &next, universe, depth - 1)?;
        }
        Ok(())
    }
    go(sem, &sem.initial(), universe, max_len)
}

/// A ready-made family of object semantics covering the workloads in the
/// experiment suite. All states are small and hashable so the exhaustive
/// explorer can use them.
#[derive(Clone, Debug)]
pub enum StdSemantics {
    /// An integer register. Read opcodes: 0 = read. Write opcodes:
    /// 0 = write `param`.
    Register {
        /// Initial register contents.
        init: i64,
    },
    /// A counter. Read opcodes: 0 = read. Write opcodes: 0 = add `param`.
    Counter {
        /// Initial count.
        init: i64,
    },
    /// A bank account that refuses overdrafts. Read opcodes: 0 = balance.
    /// Write opcodes: 0 = deposit `param`; 1 = withdraw `param` (returns 1
    /// on success, 0 — leaving the balance alone — when funds are
    /// insufficient).
    Account {
        /// Opening balance.
        init: i64,
    },
    /// A set of integers. Read opcodes: 0 = contains `param` (0/1),
    /// 1 = size. Write opcodes: 0 = insert `param` (returns 1 if newly
    /// inserted), 1 = remove `param` (returns 1 if present).
    IntSet,
    /// An append-only log. Read opcodes: 0 = length, 1 = last entry (or
    /// -1 when empty). Write opcodes: 0 = append `param` (returns new
    /// length).
    Log,
    /// A FIFO queue. Read opcodes: 0 = length, 1 = front (or -1 when
    /// empty). Write opcodes: 0 = enqueue `param` (returns new length),
    /// 1 = dequeue (returns dequeued element or -1 when empty).
    Queue,
}

/// State of a [`StdSemantics`] instance.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum StdState {
    /// Register or counter or account contents.
    Int(i64),
    /// Set contents.
    Set(BTreeSet<i64>),
    /// Log contents.
    Log(Vec<i64>),
    /// Queue contents, front first.
    Queue(Vec<i64>),
}

impl StdSemantics {
    /// A register initialised to `init`.
    pub fn register(init: i64) -> Self {
        StdSemantics::Register { init }
    }

    /// A counter initialised to `init`.
    pub fn counter(init: i64) -> Self {
        StdSemantics::Counter { init }
    }

    /// An account with opening balance `init`.
    pub fn account(init: i64) -> Self {
        StdSemantics::Account { init }
    }
}

impl ObjectSemantics for StdSemantics {
    type State = StdState;

    fn initial(&self) -> StdState {
        match *self {
            StdSemantics::Register { init }
            | StdSemantics::Counter { init }
            | StdSemantics::Account { init } => StdState::Int(init),
            StdSemantics::IntSet => StdState::Set(BTreeSet::new()),
            StdSemantics::Log => StdState::Log(Vec::new()),
            StdSemantics::Queue => StdState::Queue(Vec::new()),
        }
    }

    fn apply(&self, st: &StdState, access: &AccessInfo) -> (StdState, Value) {
        match (self, st) {
            (StdSemantics::Register { .. }, StdState::Int(v)) => match access.kind {
                AccessKind::Read => (st.clone(), Value(*v)),
                AccessKind::Write => (StdState::Int(access.param), Value(access.param)),
            },
            (StdSemantics::Counter { .. }, StdState::Int(v)) => match access.kind {
                AccessKind::Read => (st.clone(), Value(*v)),
                AccessKind::Write => {
                    let next = v.wrapping_add(access.param);
                    (StdState::Int(next), Value(next))
                }
            },
            (StdSemantics::Account { .. }, StdState::Int(v)) => {
                match (access.kind, access.opcode) {
                    (AccessKind::Read, _) => (st.clone(), Value(*v)),
                    (AccessKind::Write, 0) => (
                        StdState::Int(v.wrapping_add(access.param)),
                        Value(v + access.param),
                    ),
                    (AccessKind::Write, _) => {
                        if *v >= access.param {
                            (StdState::Int(v - access.param), Value(1))
                        } else {
                            (st.clone(), Value(0))
                        }
                    }
                }
            }
            (StdSemantics::IntSet, StdState::Set(s)) => match (access.kind, access.opcode) {
                (AccessKind::Read, 0) => (st.clone(), Value(s.contains(&access.param) as i64)),
                (AccessKind::Read, _) => (st.clone(), Value(s.len() as i64)),
                (AccessKind::Write, 0) => {
                    let mut s = s.clone();
                    let fresh = s.insert(access.param);
                    (StdState::Set(s), Value(fresh as i64))
                }
                (AccessKind::Write, _) => {
                    let mut s = s.clone();
                    let present = s.remove(&access.param);
                    (StdState::Set(s), Value(present as i64))
                }
            },
            (StdSemantics::Log, StdState::Log(l)) => match (access.kind, access.opcode) {
                (AccessKind::Read, 0) => (st.clone(), Value(l.len() as i64)),
                (AccessKind::Read, _) => (st.clone(), Value(l.last().copied().unwrap_or(-1))),
                (AccessKind::Write, _) => {
                    let mut l = l.clone();
                    l.push(access.param);
                    let len = l.len() as i64;
                    (StdState::Log(l), Value(len))
                }
            },
            (StdSemantics::Queue, StdState::Queue(q)) => match (access.kind, access.opcode) {
                (AccessKind::Read, 0) => (st.clone(), Value(q.len() as i64)),
                (AccessKind::Read, _) => (st.clone(), Value(q.first().copied().unwrap_or(-1))),
                (AccessKind::Write, 0) => {
                    let mut q = q.clone();
                    q.push(access.param);
                    let len = q.len() as i64;
                    (StdState::Queue(q), Value(len))
                }
                (AccessKind::Write, _) => {
                    if q.is_empty() {
                        (st.clone(), Value(-1))
                    } else {
                        let mut q = q.clone();
                        let front = q.remove(0);
                        (StdState::Queue(q), Value(front))
                    }
                }
            },
            (sem, st) => unreachable!("state {st:?} does not belong to semantics {sem:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntx_tree::ObjectId;

    fn acc(kind: AccessKind, opcode: u16, param: i64) -> AccessInfo {
        AccessInfo {
            object: ObjectId::from_index(0),
            kind,
            opcode,
            param,
        }
    }

    #[test]
    fn register_semantics() {
        let sem = StdSemantics::register(5);
        let s0 = sem.initial();
        let (s1, v) = sem.apply(&s0, &acc(AccessKind::Read, 0, 0));
        assert_eq!(v, Value(5));
        assert_eq!(s1, s0);
        let (s2, v) = sem.apply(&s1, &acc(AccessKind::Write, 0, 9));
        assert_eq!(v, Value(9));
        let (_, v) = sem.apply(&s2, &acc(AccessKind::Read, 0, 0));
        assert_eq!(v, Value(9));
    }

    #[test]
    fn counter_semantics() {
        let sem = StdSemantics::counter(0);
        let s = sem.initial();
        let (s, v1) = sem.apply(&s, &acc(AccessKind::Write, 0, 3));
        let (s, v2) = sem.apply(&s, &acc(AccessKind::Write, 0, -1));
        assert_eq!((v1, v2), (Value(3), Value(2)));
        let (_, v) = sem.apply(&s, &acc(AccessKind::Read, 0, 0));
        assert_eq!(v, Value(2));
    }

    #[test]
    fn account_blocks_overdraft() {
        let sem = StdSemantics::account(10);
        let s = sem.initial();
        let (s, ok) = sem.apply(&s, &acc(AccessKind::Write, 1, 4)); // withdraw 4
        assert_eq!(ok, Value(1));
        let (s, ok) = sem.apply(&s, &acc(AccessKind::Write, 1, 100)); // too much
        assert_eq!(ok, Value(0));
        let (_, bal) = sem.apply(&s, &acc(AccessKind::Read, 0, 0));
        assert_eq!(bal, Value(6));
    }

    #[test]
    fn set_semantics() {
        let sem = StdSemantics::IntSet;
        let s = sem.initial();
        let (s, fresh) = sem.apply(&s, &acc(AccessKind::Write, 0, 7));
        assert_eq!(fresh, Value(1));
        let (s, fresh) = sem.apply(&s, &acc(AccessKind::Write, 0, 7));
        assert_eq!(fresh, Value(0));
        let (s, has) = sem.apply(&s, &acc(AccessKind::Read, 0, 7));
        assert_eq!(has, Value(1));
        let (s, n) = sem.apply(&s, &acc(AccessKind::Read, 1, 0));
        assert_eq!(n, Value(1));
        let (s, removed) = sem.apply(&s, &acc(AccessKind::Write, 1, 7));
        assert_eq!(removed, Value(1));
        let (_, has) = sem.apply(&s, &acc(AccessKind::Read, 0, 7));
        assert_eq!(has, Value(0));
    }

    #[test]
    fn log_semantics() {
        let sem = StdSemantics::Log;
        let s = sem.initial();
        let (s, last) = sem.apply(&s, &acc(AccessKind::Read, 1, 0));
        assert_eq!(last, Value(-1));
        let (s, len) = sem.apply(&s, &acc(AccessKind::Write, 0, 42));
        assert_eq!(len, Value(1));
        let (s, last) = sem.apply(&s, &acc(AccessKind::Read, 1, 0));
        assert_eq!(last, Value(42));
        let (_, len) = sem.apply(&s, &acc(AccessKind::Read, 0, 0));
        assert_eq!(len, Value(1));
    }

    #[test]
    fn queue_semantics() {
        let sem = StdSemantics::Queue;
        let s = sem.initial();
        let (s, front) = sem.apply(&s, &acc(AccessKind::Write, 1, 0)); // dequeue empty
        assert_eq!(front, Value(-1));
        let (s, len) = sem.apply(&s, &acc(AccessKind::Write, 0, 5)); // enqueue 5
        assert_eq!(len, Value(1));
        let (s, len) = sem.apply(&s, &acc(AccessKind::Write, 0, 7)); // enqueue 7
        assert_eq!(len, Value(2));
        let (s, front) = sem.apply(&s, &acc(AccessKind::Read, 1, 0));
        assert_eq!(front, Value(5));
        let (s, deq) = sem.apply(&s, &acc(AccessKind::Write, 1, 0));
        assert_eq!(deq, Value(5));
        let (_, len) = sem.apply(&s, &acc(AccessKind::Read, 0, 0));
        assert_eq!(len, Value(1));
    }

    #[test]
    fn validator_accepts_all_std_semantics() {
        let universe = [
            acc(AccessKind::Read, 0, 2),
            acc(AccessKind::Read, 1, 0),
            acc(AccessKind::Write, 0, 2),
            acc(AccessKind::Write, 1, 1),
        ];
        for sem in [
            StdSemantics::register(0),
            StdSemantics::counter(0),
            StdSemantics::account(3),
            StdSemantics::IntSet,
            StdSemantics::Log,
            StdSemantics::Queue,
        ] {
            validate_semantics(&sem, &universe, 4).unwrap_or_else(|e| panic!("{sem:?}: {e}"));
        }
    }

    #[test]
    fn validator_rejects_mutating_read() {
        /// Deliberately broken: its "read" pops the log.
        #[derive(Clone, Debug)]
        struct BadSemantics;
        impl ObjectSemantics for BadSemantics {
            type State = Vec<i64>;
            fn initial(&self) -> Vec<i64> {
                vec![1]
            }
            fn apply(&self, st: &Vec<i64>, access: &AccessInfo) -> (Vec<i64>, Value) {
                let mut st = st.clone();
                match access.kind {
                    AccessKind::Read => (st.split_off(st.len().saturating_sub(1)), Value(0)),
                    AccessKind::Write => {
                        st.push(access.param);
                        (st, Value(0))
                    }
                }
            }
        }
        let universe = [acc(AccessKind::Write, 0, 1), acc(AccessKind::Read, 0, 0)];
        let err = validate_semantics(&BadSemantics, &universe, 3).unwrap_err();
        assert!(err.contains("condition 3"), "{err}");
    }

    #[test]
    fn reads_are_transparent_for_all_std_semantics() {
        let mixes = vec![
            acc(AccessKind::Write, 0, 3),
            acc(AccessKind::Read, 0, 3),
            acc(AccessKind::Write, 1, 2),
            acc(AccessKind::Read, 1, 0),
            acc(AccessKind::Write, 0, -5),
            acc(AccessKind::Read, 0, 0),
        ];
        for sem in [
            StdSemantics::register(1),
            StdSemantics::counter(0),
            StdSemantics::account(4),
            StdSemantics::IntSet,
            StdSemantics::Log,
        ] {
            assert!(
                check_read_transparency(&sem, &mixes),
                "{sem:?} reads not transparent"
            );
        }
    }
}
