//! The transaction tree itself and its navigation algebra.

use std::fmt;

use crate::ids::{ObjectId, TxId};

/// Read/write classification of an access (Section 4 of the paper).
///
/// Write accesses need no special semantic properties; read accesses must be
/// *transparent* — they leave the object in an equieffective state. The R/W
/// locking object grants read locks that conflict only with write locks.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AccessKind {
    /// A read access: its `REQUEST_COMMIT` must be transparent.
    Read,
    /// A write access: may change the object state arbitrarily.
    Write,
}

impl AccessKind {
    /// `true` for [`AccessKind::Read`].
    #[inline]
    pub fn is_read(self) -> bool {
        matches!(self, AccessKind::Read)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => f.write_str("read"),
            AccessKind::Write => f.write_str("write"),
        }
    }
}

/// Description of what an access leaf does.
///
/// The paper folds the "parameters" of an access into its name (footnote 6:
/// transactions with different inputs are different transactions). We carry
/// the parameters explicitly: `opcode` selects an operation of the object's
/// abstract data type and `param` is its argument; both are interpreted by
/// the object semantics in `ntx-model`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct AccessInfo {
    /// Object this access touches.
    pub object: ObjectId,
    /// Read/write classification.
    pub kind: AccessKind,
    /// Operation selector, interpreted by the object's semantics.
    pub opcode: u16,
    /// Operation argument, interpreted by the object's semantics.
    pub param: i64,
}

/// Whether a node is an internal (non-access) transaction or an access leaf.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NodeKind {
    /// Non-access transaction: creates and manages subtransactions.
    Internal,
    /// Access leaf: performs one operation on one object.
    Access(AccessInfo),
}

#[derive(Clone, Debug)]
pub(crate) struct Node {
    pub(crate) parent: Option<TxId>,
    pub(crate) children: Vec<TxId>,
    pub(crate) depth: u32,
    pub(crate) label: String,
    pub(crate) kind: NodeKind,
}

/// A finite transaction naming tree — the *system type* of a nested
/// transaction system.
///
/// Node 0 is always the root transaction `T₀` modelling the external
/// environment. The tree is immutable once built (see
/// [`crate::TxTreeBuilder`]); every component of a system shares a reference
/// to it, mirroring the paper's assumption that the system type is known in
/// advance by all components.
#[derive(Clone, Debug)]
pub struct TxTree {
    pub(crate) nodes: Vec<Node>,
    pub(crate) objects: Vec<String>,
    /// Accesses partitioned by object, in creation order.
    pub(crate) accesses_by_object: Vec<Vec<TxId>>,
}

impl TxTree {
    /// The root transaction `T₀`.
    pub const ROOT: TxId = TxId(0);

    /// Number of transaction names in the tree (including `T₀`).
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if the tree contains only `T₀`.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Number of declared objects.
    #[inline]
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Iterate over all transaction ids in index order (root first).
    pub fn all_tx(&self) -> impl Iterator<Item = TxId> + '_ {
        (0..self.nodes.len()).map(TxId::from_index)
    }

    /// Iterate over all object ids.
    pub fn all_objects(&self) -> impl Iterator<Item = ObjectId> + '_ {
        (0..self.objects.len()).map(ObjectId::from_index)
    }

    /// Human-readable label given at construction time.
    pub fn label(&self, t: TxId) -> &str {
        &self.nodes[t.index()].label
    }

    /// Name of an object.
    pub fn object_name(&self, x: ObjectId) -> &str {
        &self.objects[x.index()]
    }

    /// Parent of `t`, or `None` for the root.
    #[inline]
    pub fn parent(&self, t: TxId) -> Option<TxId> {
        self.nodes[t.index()].parent
    }

    /// Children of `t` in declaration order.
    #[inline]
    pub fn children(&self, t: TxId) -> &[TxId] {
        &self.nodes[t.index()].children
    }

    /// Depth of `t` (root has depth 0).
    #[inline]
    pub fn depth(&self, t: TxId) -> u32 {
        self.nodes[t.index()].depth
    }

    /// Node classification of `t`.
    #[inline]
    pub fn kind(&self, t: TxId) -> NodeKind {
        self.nodes[t.index()].kind
    }

    /// `true` if `t` is an access leaf.
    #[inline]
    pub fn is_access(&self, t: TxId) -> bool {
        matches!(self.nodes[t.index()].kind, NodeKind::Access(_))
    }

    /// Access description of `t`, or `None` if `t` is internal.
    #[inline]
    pub fn access(&self, t: TxId) -> Option<AccessInfo> {
        match self.nodes[t.index()].kind {
            NodeKind::Access(a) => Some(a),
            NodeKind::Internal => None,
        }
    }

    /// All accesses to object `x`, in declaration order.
    pub fn accesses_of(&self, x: ObjectId) -> impl Iterator<Item = TxId> + '_ {
        self.accesses_by_object[x.index()].iter().copied()
    }

    /// `true` iff `anc` is an ancestor of `t`.
    ///
    /// Following the paper's convention, a transaction is an ancestor (and a
    /// descendant) of itself.
    pub fn is_ancestor(&self, anc: TxId, t: TxId) -> bool {
        let mut cur = t;
        let target_depth = self.depth(anc);
        while self.depth(cur) > target_depth {
            cur = self.nodes[cur.index()].parent.expect("non-root has parent");
        }
        cur == anc
    }

    /// `true` iff `t` is a *proper* ancestor of `d` (ancestor and not equal).
    #[inline]
    pub fn is_proper_ancestor(&self, t: TxId, d: TxId) -> bool {
        t != d && self.is_ancestor(t, d)
    }

    /// `true` iff `a` and `b` are related by ancestry (either direction,
    /// including equality).
    pub fn related(&self, a: TxId, b: TxId) -> bool {
        self.is_ancestor(a, b) || self.is_ancestor(b, a)
    }

    /// `true` iff `a` and `b` are distinct children of the same parent.
    pub fn are_siblings(&self, a: TxId, b: TxId) -> bool {
        a != b && self.parent(a).is_some() && self.parent(a) == self.parent(b)
    }

    /// Least common ancestor of `a` and `b`.
    pub fn lca(&self, a: TxId, b: TxId) -> TxId {
        let (mut a, mut b) = (a, b);
        while self.depth(a) > self.depth(b) {
            a = self.parent(a).expect("deeper node has parent");
        }
        while self.depth(b) > self.depth(a) {
            b = self.parent(b).expect("deeper node has parent");
        }
        while a != b {
            a = self.parent(a).expect("distinct nodes below root");
            b = self.parent(b).expect("distinct nodes below root");
        }
        a
    }

    /// Iterate `t`, parent(`t`), …, `T₀` (inclusive at both ends).
    pub fn ancestors(&self, t: TxId) -> Ancestors<'_> {
        Ancestors {
            tree: self,
            cur: Some(t),
        }
    }

    /// Iterate the *proper* ancestors of `t`: parent(`t`), …, `T₀`.
    pub fn proper_ancestors(&self, t: TxId) -> Ancestors<'_> {
        Ancestors {
            tree: self,
            cur: self.parent(t),
        }
    }

    /// The ancestors of `t` that are proper descendants of `anc`, ordered
    /// from `t` upward. This is the chain quantified over in the paper's
    /// "committed to" definition. Returns `None` if `anc` is not an
    /// ancestor of `t`.
    pub fn chain_below(&self, t: TxId, anc: TxId) -> Option<Vec<TxId>> {
        if !self.is_ancestor(anc, t) {
            return None;
        }
        let mut chain = Vec::new();
        let mut cur = t;
        while cur != anc {
            chain.push(cur);
            cur = self.parent(cur).expect("anc is an ancestor");
        }
        Some(chain)
    }

    /// The child of `anc` that is an ancestor of `t` (useful for Lemma 7.4
    /// style reasoning). `None` if `anc` is not a proper ancestor of `t`.
    pub fn child_toward(&self, anc: TxId, t: TxId) -> Option<TxId> {
        if !self.is_proper_ancestor(anc, t) {
            return None;
        }
        let mut cur = t;
        loop {
            let p = self.parent(cur).expect("anc is a proper ancestor");
            if p == anc {
                return Some(cur);
            }
            cur = p;
        }
    }

    /// Iterate the subtree rooted at `t` in preorder (including `t`).
    pub fn descendants(&self, t: TxId) -> Descendants<'_> {
        Descendants {
            tree: self,
            stack: vec![t],
        }
    }

    /// All access leaves in the subtree rooted at `t`, preorder.
    pub fn access_leaves(&self, t: TxId) -> impl Iterator<Item = TxId> + '_ {
        self.descendants(t).filter(|&d| self.is_access(d))
    }

    /// Dotted path of node labels from the root to `t`, e.g. `T0.job.read`.
    pub fn path(&self, t: TxId) -> String {
        let mut parts: Vec<&str> = self.ancestors(t).map(|a| self.label(a)).collect();
        parts.reverse();
        parts.join(".")
    }

    /// Render the whole tree as an indented listing (for debugging and
    /// example output).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(TxTree::ROOT, 0, &mut out);
        out
    }

    fn render_into(&self, t: TxId, indent: usize, out: &mut String) {
        use fmt::Write as _;
        for _ in 0..indent {
            out.push_str("  ");
        }
        match self.kind(t) {
            NodeKind::Internal => {
                let _ = writeln!(out, "{t} {}", self.label(t));
            }
            NodeKind::Access(a) => {
                let _ = writeln!(
                    out,
                    "{t} {} [{} {} op{} #{}]",
                    self.label(t),
                    a.kind,
                    self.object_name(a.object),
                    a.opcode,
                    a.param
                );
            }
        }
        for &c in self.children(t) {
            self.render_into(c, indent + 1, out);
        }
    }
}

/// Iterator over a node's ancestor chain; see [`TxTree::ancestors`].
pub struct Ancestors<'a> {
    tree: &'a TxTree,
    cur: Option<TxId>,
}

impl Iterator for Ancestors<'_> {
    type Item = TxId;

    fn next(&mut self) -> Option<TxId> {
        let cur = self.cur?;
        self.cur = self.tree.parent(cur);
        Some(cur)
    }
}

/// Preorder iterator over a subtree; see [`TxTree::descendants`].
pub struct Descendants<'a> {
    tree: &'a TxTree,
    stack: Vec<TxId>,
}

impl Iterator for Descendants<'_> {
    type Item = TxId;

    fn next(&mut self) -> Option<TxId> {
        let t = self.stack.pop()?;
        // Push children in reverse so preorder visits them left-to-right.
        for &c in self.tree.children(t).iter().rev() {
            self.stack.push(c);
        }
        Some(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TxTreeBuilder;

    /// T0 ── t1 ── {r1, w1}
    ///    └─ t2 ── {t3 ── {r2}, w2}
    fn sample() -> (TxTree, [TxId; 7], ObjectId) {
        let mut b = TxTreeBuilder::new();
        let x = b.object("x");
        let t1 = b.internal(TxTree::ROOT, "t1");
        let r1 = b.access(t1, "r1", x, AccessKind::Read, 0, 0);
        let w1 = b.access(t1, "w1", x, AccessKind::Write, 1, 10);
        let t2 = b.internal(TxTree::ROOT, "t2");
        let t3 = b.internal(t2, "t3");
        let r2 = b.access(t3, "r2", x, AccessKind::Read, 0, 0);
        let w2 = b.access(t2, "w2", x, AccessKind::Write, 1, 20);
        (b.build(), [t1, r1, w1, t2, t3, r2, w2], x)
    }

    #[test]
    fn parent_and_depth() {
        let (tree, [t1, r1, _, t2, t3, r2, _], _) = sample();
        assert_eq!(tree.parent(TxTree::ROOT), None);
        assert_eq!(tree.parent(t1), Some(TxTree::ROOT));
        assert_eq!(tree.parent(r2), Some(t3));
        assert_eq!(tree.depth(TxTree::ROOT), 0);
        assert_eq!(tree.depth(t2), 1);
        assert_eq!(tree.depth(t3), 2);
        assert_eq!(tree.depth(r2), 3);
        assert_eq!(tree.depth(r1), 2);
    }

    #[test]
    fn ancestor_is_reflexive() {
        let (tree, ids, _) = sample();
        for t in ids {
            assert!(tree.is_ancestor(t, t));
            assert!(!tree.is_proper_ancestor(t, t));
        }
    }

    #[test]
    fn ancestor_chains() {
        let (tree, [t1, r1, _, t2, t3, r2, _], _) = sample();
        assert!(tree.is_ancestor(TxTree::ROOT, r2));
        assert!(tree.is_ancestor(t2, r2));
        assert!(tree.is_ancestor(t3, r2));
        assert!(!tree.is_ancestor(t1, r2));
        assert!(!tree.is_ancestor(r1, t1));
        assert!(tree.is_proper_ancestor(t2, t3));
    }

    #[test]
    fn lca_cases() {
        let (tree, [t1, r1, w1, t2, t3, r2, w2], _) = sample();
        assert_eq!(tree.lca(r1, w1), t1);
        assert_eq!(tree.lca(r1, r2), TxTree::ROOT);
        assert_eq!(tree.lca(r2, w2), t2);
        assert_eq!(tree.lca(t3, t3), t3);
        assert_eq!(tree.lca(t2, r2), t2);
        assert_eq!(tree.lca(TxTree::ROOT, w2), TxTree::ROOT);
        // lca is symmetric.
        assert_eq!(tree.lca(w2, r2), tree.lca(r2, w2));
        assert_eq!(tree.lca(t1, t2), TxTree::ROOT);
    }

    #[test]
    fn siblings() {
        let (tree, [t1, r1, w1, t2, t3, _, w2], _) = sample();
        assert!(tree.are_siblings(t1, t2));
        assert!(tree.are_siblings(r1, w1));
        assert!(tree.are_siblings(t3, w2));
        assert!(!tree.are_siblings(t1, t1));
        assert!(!tree.are_siblings(r1, w2));
        assert!(!tree.are_siblings(TxTree::ROOT, t1));
    }

    #[test]
    fn ancestors_iterator() {
        let (tree, [_, _, _, t2, t3, r2, _], _) = sample();
        let chain: Vec<_> = tree.ancestors(r2).collect();
        assert_eq!(chain, vec![r2, t3, t2, TxTree::ROOT]);
        let proper: Vec<_> = tree.proper_ancestors(r2).collect();
        assert_eq!(proper, vec![t3, t2, TxTree::ROOT]);
        assert_eq!(tree.ancestors(TxTree::ROOT).count(), 1);
    }

    #[test]
    fn chain_below_matches_committed_to_quantifier() {
        let (tree, [t1, _, _, t2, t3, r2, _], _) = sample();
        assert_eq!(tree.chain_below(r2, t2), Some(vec![r2, t3]));
        assert_eq!(tree.chain_below(r2, TxTree::ROOT), Some(vec![r2, t3, t2]));
        assert_eq!(tree.chain_below(t2, t2), Some(vec![]));
        assert_eq!(tree.chain_below(r2, t1), None);
    }

    #[test]
    fn child_toward() {
        let (tree, [t1, _, _, t2, t3, r2, _], _) = sample();
        assert_eq!(tree.child_toward(TxTree::ROOT, r2), Some(t2));
        assert_eq!(tree.child_toward(t2, r2), Some(t3));
        assert_eq!(tree.child_toward(t3, r2), Some(r2));
        assert_eq!(tree.child_toward(r2, r2), None);
        assert_eq!(tree.child_toward(t1, r2), None);
    }

    #[test]
    fn descendants_preorder() {
        let (tree, [t1, r1, w1, t2, t3, r2, w2], _) = sample();
        let all: Vec<_> = tree.descendants(TxTree::ROOT).collect();
        assert_eq!(all, vec![TxTree::ROOT, t1, r1, w1, t2, t3, r2, w2]);
        let sub: Vec<_> = tree.descendants(t2).collect();
        assert_eq!(sub, vec![t2, t3, r2, w2]);
    }

    #[test]
    fn access_partition() {
        let (tree, [_, r1, w1, _, _, r2, w2], x) = sample();
        let accesses: Vec<_> = tree.accesses_of(x).collect();
        assert_eq!(accesses, vec![r1, w1, r2, w2]);
        assert!(tree.is_access(r1));
        assert!(!tree.is_access(TxTree::ROOT));
        let info = tree.access(w2).unwrap();
        assert_eq!(info.kind, AccessKind::Write);
        assert_eq!(info.param, 20);
        assert_eq!(tree.access(TxTree::ROOT), None);
    }

    #[test]
    fn access_leaves_of_subtree() {
        let (tree, [_, _, _, t2, _, r2, w2], _) = sample();
        let leaves: Vec<_> = tree.access_leaves(t2).collect();
        assert_eq!(leaves, vec![r2, w2]);
    }

    #[test]
    fn paths_and_render() {
        let (tree, [_, _, _, _, _, r2, _], _) = sample();
        assert_eq!(tree.path(r2), "T0.t2.t3.r2");
        let rendered = tree.render();
        assert!(rendered.contains("t3"));
        assert!(rendered.contains("read"));
    }

    #[test]
    fn related_relation() {
        let (tree, [t1, _, _, t2, t3, _, _], _) = sample();
        assert!(tree.related(t2, t3));
        assert!(tree.related(t3, t2));
        assert!(tree.related(t2, t2));
        assert!(!tree.related(t1, t3));
    }
}
