//! Construction of transaction trees.

use crate::ids::{ObjectId, TxId};
use crate::tree::{AccessInfo, AccessKind, Node, NodeKind, TxTree};

/// Builder for [`TxTree`].
///
/// Nodes are added parent-first; the builder enforces that accesses are
/// leaves (no children may be added under an access) and that every access
/// names a previously declared object.
///
/// ```
/// use ntx_tree::{AccessKind, TxTree, TxTreeBuilder};
/// let mut b = TxTreeBuilder::new();
/// let x = b.object("x");
/// let t = b.internal(TxTree::ROOT, "t");
/// b.access(t, "w", x, AccessKind::Write, 0, 7);
/// let tree = b.build();
/// assert_eq!(tree.len(), 3);
/// ```
#[derive(Clone, Debug)]
pub struct TxTreeBuilder {
    nodes: Vec<Node>,
    objects: Vec<String>,
    accesses_by_object: Vec<Vec<TxId>>,
}

impl TxTreeBuilder {
    /// Start a new tree containing only the root `T₀`.
    pub fn new() -> Self {
        TxTreeBuilder {
            nodes: vec![Node {
                parent: None,
                children: Vec::new(),
                depth: 0,
                label: "T0".to_owned(),
                kind: NodeKind::Internal,
            }],
            objects: Vec::new(),
            accesses_by_object: Vec::new(),
        }
    }

    /// Declare a shared object.
    pub fn object(&mut self, name: impl Into<String>) -> ObjectId {
        let id = ObjectId::from_index(self.objects.len());
        self.objects.push(name.into());
        self.accesses_by_object.push(Vec::new());
        id
    }

    /// Add an internal (non-access) transaction under `parent`.
    ///
    /// # Panics
    /// Panics if `parent` is an access leaf or out of range.
    pub fn internal(&mut self, parent: TxId, label: impl Into<String>) -> TxId {
        self.add_node(parent, label.into(), NodeKind::Internal)
    }

    /// Add an access leaf under `parent` touching `object`.
    ///
    /// `opcode`/`param` select and parameterise the operation of the
    /// object's abstract data type; they are interpreted by the object
    /// semantics used when the tree is turned into a system.
    ///
    /// # Panics
    /// Panics if `parent` is an access leaf, or `object` was not declared.
    pub fn access(
        &mut self,
        parent: TxId,
        label: impl Into<String>,
        object: ObjectId,
        kind: AccessKind,
        opcode: u16,
        param: i64,
    ) -> TxId {
        assert!(
            object.index() < self.objects.len(),
            "undeclared object {object:?}"
        );
        let id = self.add_node(
            parent,
            label.into(),
            NodeKind::Access(AccessInfo {
                object,
                kind,
                opcode,
                param,
            }),
        );
        self.accesses_by_object[object.index()].push(id);
        id
    }

    /// Convenience: a read access with `opcode`/`param` 0.
    pub fn read(&mut self, parent: TxId, label: impl Into<String>, object: ObjectId) -> TxId {
        self.access(parent, label, object, AccessKind::Read, 0, 0)
    }

    /// Convenience: a write access with opcode 0 and the given parameter.
    pub fn write(
        &mut self,
        parent: TxId,
        label: impl Into<String>,
        object: ObjectId,
        param: i64,
    ) -> TxId {
        self.access(parent, label, object, AccessKind::Write, 0, param)
    }

    fn add_node(&mut self, parent: TxId, label: String, kind: NodeKind) -> TxId {
        let pnode = self
            .nodes
            .get(parent.index())
            .unwrap_or_else(|| panic!("parent {parent:?} out of range"));
        assert!(
            matches!(pnode.kind, NodeKind::Internal),
            "cannot add children under access leaf {parent:?}"
        );
        let depth = pnode.depth + 1;
        let id = TxId::from_index(self.nodes.len());
        self.nodes.push(Node {
            parent: Some(parent),
            children: Vec::new(),
            depth,
            label,
            kind,
        });
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Number of nodes added so far (including the root).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if only the root exists.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Finish construction.
    pub fn build(self) -> TxTree {
        TxTree {
            nodes: self.nodes,
            objects: self.objects,
            accesses_by_object: self.accesses_by_object,
        }
    }
}

impl Default for TxTreeBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_only() {
        let tree = TxTreeBuilder::new().build();
        assert_eq!(tree.len(), 1);
        assert!(tree.is_empty());
        assert_eq!(tree.label(TxTree::ROOT), "T0");
        assert_eq!(tree.kind(TxTree::ROOT), NodeKind::Internal);
    }

    #[test]
    fn children_in_declaration_order() {
        let mut b = TxTreeBuilder::new();
        let a = b.internal(TxTree::ROOT, "a");
        let c = b.internal(TxTree::ROOT, "c");
        let bb = b.internal(TxTree::ROOT, "b");
        let tree = b.build();
        assert_eq!(tree.children(TxTree::ROOT), &[a, c, bb]);
    }

    #[test]
    #[should_panic(expected = "access leaf")]
    fn no_children_under_access() {
        let mut b = TxTreeBuilder::new();
        let x = b.object("x");
        let w = b.write(TxTree::ROOT, "w", x, 1);
        b.internal(w, "bad");
    }

    #[test]
    #[should_panic(expected = "undeclared object")]
    fn access_requires_declared_object() {
        let mut b = TxTreeBuilder::new();
        b.access(
            TxTree::ROOT,
            "bad",
            ObjectId::from_index(3),
            AccessKind::Read,
            0,
            0,
        );
    }

    #[test]
    fn convenience_constructors() {
        let mut b = TxTreeBuilder::new();
        let x = b.object("x");
        let r = b.read(TxTree::ROOT, "r", x);
        let w = b.write(TxTree::ROOT, "w", x, 5);
        let tree = b.build();
        assert_eq!(tree.access(r).unwrap().kind, AccessKind::Read);
        let wi = tree.access(w).unwrap();
        assert_eq!(wi.kind, AccessKind::Write);
        assert_eq!(wi.param, 5);
    }

    #[test]
    fn object_names() {
        let mut b = TxTreeBuilder::new();
        let x = b.object("accounts");
        let y = b.object("audit-log");
        let tree = b.build();
        assert_eq!(tree.object_name(x), "accounts");
        assert_eq!(tree.object_name(y), "audit-log");
        assert_eq!(tree.object_count(), 2);
        assert_eq!(tree.all_objects().count(), 2);
    }
}
