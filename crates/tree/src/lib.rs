//! # ntx-tree — transaction naming trees ("system types")
//!
//! Fekete, Lynch, Merritt and Weihl (PODS 1987) organise all transaction
//! names of a nested-transaction system into a tree — the *system type* —
//! rooted at the mythical transaction `T₀` which models the external
//! environment. Leaves of the tree are *accesses*: each access touches a
//! single shared object and is classified as a *read* or a *write* access.
//! Internal nodes are ordinary (non-access) transactions whose only job is
//! to create and manage subtransactions.
//!
//! The paper treats the tree as a predefined, possibly infinite naming
//! scheme known to every component. This crate materialises the finite
//! portion of the tree a particular system actually names, and provides the
//! tree algebra the rest of the workspace leans on: `parent`, `ancestors`,
//! `descendants`, least common ancestors, sibling tests, and the partition
//! of accesses by object.
//!
//! ```
//! use ntx_tree::{AccessKind, TxTreeBuilder};
//!
//! let mut b = TxTreeBuilder::new();
//! let acct = b.object("account");
//! let t1 = b.internal(ntx_tree::TxTree::ROOT, "t1");
//! let r = b.access(t1, "read-balance", acct, AccessKind::Read, 0, 0);
//! let w = b.access(t1, "deposit", acct, AccessKind::Write, 1, 50);
//! let tree = b.build();
//!
//! assert_eq!(tree.parent(r), Some(t1));
//! assert_eq!(tree.lca(r, w), t1);
//! assert!(tree.is_ancestor(ntx_tree::TxTree::ROOT, w));
//! assert_eq!(tree.accesses_of(acct).count(), 2);
//! ```

mod builder;
mod ids;
mod tree;

pub use builder::TxTreeBuilder;
pub use ids::{ObjectId, TxId};
pub use tree::{AccessInfo, AccessKind, NodeKind, TxTree};
