//! Compact identifiers for transactions and objects.

use std::fmt;

/// Identifier of a transaction name in a [`crate::TxTree`].
///
/// A `TxId` is an index into the tree's node arena; it is only meaningful
/// with respect to the tree it was created by. The root transaction `T₀` is
/// always [`crate::TxTree::ROOT`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxId(pub(crate) u32);

impl TxId {
    /// The raw arena index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstruct a `TxId` from a raw index previously obtained via
    /// [`TxId::index`]. The caller is responsible for using it only with the
    /// tree it came from.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        TxId(u32::try_from(i).expect("transaction tree larger than u32::MAX"))
    }
}

impl fmt::Debug for TxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl fmt::Display for TxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Identifier of a shared data object.
///
/// Accesses — the leaves of the transaction tree — are partitioned by the
/// object they touch; the paper associates one (basic or R/W locking) object
/// automaton with each `ObjectId`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId(pub(crate) u32);

impl ObjectId {
    /// The raw arena index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstruct an `ObjectId` from a raw index.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        ObjectId(u32::try_from(i).expect("object table larger than u32::MAX"))
    }
}

impl fmt::Debug for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "X{}", self.0)
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "X{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txid_roundtrip() {
        let t = TxId::from_index(42);
        assert_eq!(t.index(), 42);
        assert_eq!(format!("{t}"), "T42");
        assert_eq!(format!("{t:?}"), "T42");
    }

    #[test]
    fn objectid_roundtrip() {
        let x = ObjectId::from_index(7);
        assert_eq!(x.index(), 7);
        assert_eq!(format!("{x}"), "X7");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(TxId::from_index(1) < TxId::from_index(2));
        assert!(ObjectId::from_index(0) < ObjectId::from_index(9));
    }
}
