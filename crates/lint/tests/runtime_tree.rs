//! The lint's reason for existing: `cargo test -p ntx-lint` checks the
//! real `crates/runtime` sources against the lock discipline. CI runs it
//! as a required job; a direct `std::sync` import, a bare `unsafe`, an
//! unmarked `Relaxed`, or a lock-order inversion fails the build here.

use std::path::Path;

#[test]
fn runtime_tree_is_clean() {
    let runtime = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("crates/")
        .join("runtime");
    let report = ntx_lint::lint_crate(&runtime).expect("read runtime sources");
    assert!(
        report.files >= 10,
        "expected to lint the whole runtime crate"
    );
    assert!(report.violations.is_empty(), "\n{report}");
}

#[test]
fn runtime_allowlist_tags_are_all_in_use() {
    // Covered by `runtime_tree_is_clean` (stale tags are violations), but
    // asserted separately so a staleness regression names itself.
    let runtime = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("crates/")
        .join("runtime");
    let allow = std::fs::read_to_string(runtime.join("relaxed-allowlist.txt"))
        .expect("crates/runtime/relaxed-allowlist.txt");
    let tags = ntx_lint::parse_allowlist(&allow);
    assert!(
        !tags.is_empty(),
        "allowlist should document the audited sites"
    );
    let report = ntx_lint::lint_crate(&runtime).expect("read runtime sources");
    for v in &report.violations {
        assert!(
            !v.msg.contains("no longer used"),
            "stale allowlist entry: {v}"
        );
    }
}
