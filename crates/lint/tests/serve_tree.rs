//! R1 extended to the serving layer: `crates/serve` (executor, reactor,
//! wire server) must follow the same lock discipline as the runtime —
//! sync primitives only via its `src/sync.rs` shim, every `Relaxed`
//! audited, every `unsafe` justified.

use std::path::Path;

#[test]
fn serve_tree_is_clean() {
    let serve = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("crates/")
        .join("serve");
    let report = ntx_lint::lint_crate(&serve).expect("read serve sources");
    assert!(
        report.files >= 6,
        "expected to lint the whole serve crate (lib, sync, executor, wire, server, client, bin)"
    );
    assert!(report.violations.is_empty(), "\n{report}");
}

#[test]
fn serve_allowlist_is_minimal_and_live() {
    let serve = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("crates/")
        .join("serve");
    let allow = std::fs::read_to_string(serve.join("relaxed-allowlist.txt"))
        .expect("crates/serve/relaxed-allowlist.txt");
    let tags = ntx_lint::parse_allowlist(&allow);
    // The executor is deliberately SeqCst-first; only the spawn cursor is
    // allowed to relax. Growing this list needs a documented audit.
    assert_eq!(
        tags.into_iter().collect::<Vec<_>>(),
        vec!["spawn-cursor".to_string()],
        "unexpected relaxed-allowlist growth in ntx-serve"
    );
}
