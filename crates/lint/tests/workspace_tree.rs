//! Lint the whole workspace: every member crate's `src/` tree must be
//! clean under R1–R8, through the one workspace loader (R8).
//!
//! `runtime_tree.rs` and `serve_tree.rs` pin those two crates' reports in
//! detail (allowlist contents included); this test is the wide net — the
//! bench, sim, conform, model, automata, tree, and hb crates ride the
//! same discipline, so a regression anywhere in the workspace fails here
//! with the full violation list.

use ntx_lint::lint_workspace;
use std::path::Path;

/// Every workspace member with linted sources (vendored stand-ins are
/// explicitly out of scope: they mirror external crates' APIs).
const MEMBERS: &[&str] = &[
    "crates/automata",
    "crates/bench",
    "crates/conform",
    "crates/hb",
    "crates/lint",
    "crates/model",
    "crates/runtime",
    "crates/serve",
    "crates/sim",
    "crates/tree",
];

#[test]
fn whole_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = lint_workspace(&root, MEMBERS).expect("workspace sources readable");
    assert!(
        report.files > 40,
        "sanity: the workspace walk must actually visit the member crates \
         (saw {} files)",
        report.files
    );
    assert!(
        report.violations.is_empty(),
        "workspace lint violations:\n{report}"
    );
}
