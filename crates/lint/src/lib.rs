//! `ntx-lint`: the workspace's lock-discipline lint.
//!
//! Four rules keep the sharded runtime honest about its concurrency
//! contract (each is documented on [`Rule`]):
//!
//! - **R1 sync-import** — synchronisation primitives come only from the
//!   `crate::sync` shim, so `RUSTFLAGS="--cfg loom"` really swaps *every*
//!   primitive under the model checker.
//! - **R2 safety-comment** — every `unsafe` carries a `// SAFETY:`.
//! - **R3 relaxed-ordering** — `Ordering::Relaxed` only at sites with a
//!   `// relaxed(tag): justification` marker whose tag is recorded in
//!   `crates/runtime/relaxed-allowlist.txt`; stale allowlist entries fail
//!   too, so the audit can never rot in either direction.
//! - **R4 lock-order** — the documented order (object-slot mutex ≺
//!   wait-graph stripes, stripes in index order) is structurally enforced:
//!   wait-graph code never touches slots, stripe access goes through
//!   `stripe_of(`/`.iter()`, and no public function leaks a `MutexGuard`.
//!
//! There is no `syn` in this offline workspace, so the lint runs on a
//! small masking lexer ([`lexer`]) rather than a full parse: comments and
//! string bodies are blanked, then the rules are line-based token checks.
//! That makes the lint auditable and fast, at the cost of being
//! best-effort — it is a tripwire for discipline drift, not a verifier.
//!
//! It runs as a normal `cargo test -p ntx-lint`: unit tests prove each
//! rule fires on seeded violations, and the `runtime_tree` integration
//! test lints the real `crates/runtime` sources.

pub mod lexer;
pub mod rules;

use std::collections::BTreeSet;
use std::path::Path;

pub use rules::{Config, FileReport, Rule, Violation};

/// Aggregate result of linting a crate tree.
#[derive(Debug, Default)]
pub struct TreeReport {
    /// Violations across all files, plus one per stale allowlist entry.
    pub violations: Vec<Violation>,
    /// Number of `.rs` files linted.
    pub files: usize,
}

impl std::fmt::Display for TreeReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for v in &self.violations {
            writeln!(f, "{v}")?;
        }
        write!(
            f,
            "{} violation(s) across {} file(s)",
            self.violations.len(),
            self.files
        )
    }
}

/// Parse a `relaxed-allowlist.txt`: one `tag: justification` per line,
/// `#` comments and blank lines ignored.
pub fn parse_allowlist(text: &str) -> BTreeSet<String> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| l.split_once(':'))
        .map(|(tag, _)| tag.trim().to_string())
        .collect()
}

/// Lint every `.rs` file under `crate_root/src` (recursively) against the
/// crate's `relaxed-allowlist.txt`, including the staleness check: a tag
/// allowlisted but no longer used anywhere is itself a violation.
pub fn lint_crate(crate_root: &Path) -> std::io::Result<TreeReport> {
    let allow_path = crate_root.join("relaxed-allowlist.txt");
    let allow = match std::fs::read_to_string(&allow_path) {
        Ok(text) => parse_allowlist(&text),
        Err(_) => BTreeSet::new(),
    };
    let config = Config::workspace(allow.clone());

    let mut files = Vec::new();
    collect_rs(&crate_root.join("src"), &mut files)?;
    files.sort();

    let mut report = TreeReport::default();
    let mut used = BTreeSet::new();
    for path in &files {
        let src = std::fs::read_to_string(path)?;
        let label = path.display().to_string();
        let fr = rules::lint_source(&label, &src, &config);
        report.violations.extend(fr.violations);
        used.extend(fr.used_relaxed_tags);
        report.files += 1;
    }
    for stale in allow.difference(&used) {
        report.violations.push(Violation {
            file: allow_path.display().to_string(),
            line: 0,
            rule: Rule::RelaxedOrdering,
            msg: format!("allowlisted tag `{stale}` is no longer used by any source file"),
        });
    }
    Ok(report)
}

fn collect_rs(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rules::lint_source;

    fn cfg_with(tags: &[&str]) -> Config {
        Config::workspace(tags.iter().map(|t| t.to_string()).collect())
    }

    fn rules_hit(report: &FileReport) -> Vec<Rule> {
        report.violations.iter().map(|v| v.rule).collect()
    }

    // ---- R1: sync imports --------------------------------------------

    #[test]
    fn r1_flags_direct_std_sync_import() {
        let r = lint_source(
            "src/foo.rs",
            "use std::sync::Mutex;\nfn f() {}\n",
            &cfg_with(&[]),
        );
        assert_eq!(rules_hit(&r), vec![Rule::SyncImport]);
        assert_eq!(r.violations[0].line, 1);
    }

    #[test]
    fn r1_flags_parking_lot_and_qualified_loom() {
        let src = "use parking_lot::RwLock;\nfn f() { loom::model(|| {}); }\n";
        let r = lint_source("src/foo.rs", src, &cfg_with(&[]));
        assert_eq!(rules_hit(&r), vec![Rule::SyncImport, Rule::SyncImport]);
    }

    #[test]
    fn r1_exempts_the_shim_and_loom_models() {
        let src = "use std::sync::Mutex;\nuse loom::sync::Condvar;\n";
        for file in [
            "crates/runtime/src/sync.rs",
            "crates/runtime/src/loom_models.rs",
        ] {
            let r = lint_source(file, src, &cfg_with(&[]));
            assert!(r.violations.is_empty(), "{file} must be exempt");
        }
    }

    #[test]
    fn r1_exempts_cfg_test_modules() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    use std::sync::Barrier;\n}\n";
        let r = lint_source("src/foo.rs", src, &cfg_with(&[]));
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn r1_ignores_comments_and_strings() {
        let src = "// std::sync is banned here\nfn f() { g(\"parking_lot\"); }\n";
        let r = lint_source("src/foo.rs", src, &cfg_with(&[]));
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    // ---- R2: SAFETY comments -----------------------------------------

    #[test]
    fn r2_flags_unsafe_without_safety_comment() {
        let src = "fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
        let r = lint_source("src/foo.rs", src, &cfg_with(&[]));
        assert_eq!(rules_hit(&r), vec![Rule::SafetyComment]);
        assert_eq!(r.violations[0].line, 2);
    }

    #[test]
    fn r2_accepts_safety_comment_above_or_inline() {
        let src = "\
fn f(p: *const u8) -> u8 {
    // SAFETY: caller guarantees p is valid.
    unsafe { *p }
}
// SAFETY: no shared state.
unsafe impl Send for F {}
struct F;
";
        let r = lint_source("src/foo.rs", src, &cfg_with(&[]));
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn r2_applies_inside_test_modules_too() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f(p: *const u8) -> u8 { unsafe { *p } }\n}\n";
        let r = lint_source("src/foo.rs", src, &cfg_with(&[]));
        assert_eq!(rules_hit(&r), vec![Rule::SafetyComment]);
    }

    #[test]
    fn r2_ignores_unsafe_in_prose() {
        let src = "// this API is unsafe to misuse\nfn f() { g(\"unsafe\"); }\n";
        let r = lint_source("src/foo.rs", src, &cfg_with(&[]));
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    // ---- R3: Relaxed allowlist ---------------------------------------

    #[test]
    fn r3_flags_unmarked_relaxed() {
        let src = "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }\n";
        let r = lint_source("src/foo.rs", src, &cfg_with(&["ctr"]));
        assert_eq!(rules_hit(&r), vec![Rule::RelaxedOrdering]);
    }

    #[test]
    fn r3_flags_unknown_tag() {
        let src = "// relaxed(mystery): trust me\nlet x = c.load(Ordering::Relaxed);\n";
        let r = lint_source("src/foo.rs", src, &cfg_with(&["ctr"]));
        assert_eq!(rules_hit(&r), vec![Rule::RelaxedOrdering]);
        assert!(r.violations[0].msg.contains("mystery"));
    }

    #[test]
    fn r3_accepts_allowlisted_tag_and_records_usage() {
        let src = "\
fn f(c: &AtomicU64) {
    // relaxed(ctr): pure counter, atomicity is enough.
    let _ = c
        .fetch_add(1, Ordering::Relaxed);
}
";
        let r = lint_source("src/foo.rs", src, &cfg_with(&["ctr"]));
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert!(r.used_relaxed_tags.contains("ctr"));
    }

    #[test]
    fn r3_marker_does_not_leak_across_statements() {
        let src = "\
// relaxed(ctr): covers only the next statement.
let a = c.load(Ordering::Relaxed);
let b = c.load(Ordering::Relaxed);
";
        let r = lint_source("src/foo.rs", src, &cfg_with(&["ctr"]));
        assert_eq!(rules_hit(&r), vec![Rule::RelaxedOrdering]);
        assert_eq!(r.violations[0].line, 3);
    }

    #[test]
    fn r3_skips_test_modules() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { c.load(Ordering::Relaxed); }\n}\n";
        let r = lint_source("src/foo.rs", src, &cfg_with(&[]));
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    // ---- R4: lock order ----------------------------------------------

    #[test]
    fn r4_flags_slot_access_from_wait_graph_code() {
        let src = "fn bad(&self, m: &M) { let g = m.slot(3).inner.lock(); drop(g); }\n";
        let r = lint_source("src/deadlock.rs", src, &cfg_with(&[]));
        assert!(
            rules_hit(&r).contains(&Rule::LockOrder),
            "{:?}",
            r.violations
        );
    }

    #[test]
    fn r4_flags_ad_hoc_stripe_index() {
        let src = "fn bad(&self) { self.stripes[w as usize % N].0.lock(); }\n";
        let r = lint_source("src/deadlock.rs", src, &cfg_with(&[]));
        // Trips both the indexing and the unordered-lock sub-rule.
        assert!(!r.violations.is_empty());
        assert!(rules_hit(&r).iter().all(|&x| x == Rule::LockOrder));
    }

    #[test]
    fn r4_flags_unordered_multi_stripe_lock() {
        let src = "fn bad(&self) { let g = self.stripes.last().unwrap().0.lock(); }\n";
        let r = lint_source("src/deadlock.rs", src, &cfg_with(&[]));
        assert_eq!(rules_hit(&r), vec![Rule::LockOrder]);
    }

    #[test]
    fn r4_accepts_disciplined_stripe_access() {
        let src = "\
fn good(&self, w: u64) {
    self.stripes[stripe_of(w)].0.lock().remove(&w);
    let all: Vec<_> = self.stripes.iter().map(|s| s.0.lock()).collect();
    drop(all);
}
";
        let r = lint_source("src/deadlock.rs", src, &cfg_with(&[]));
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn r4_flags_public_guard_escape_anywhere() {
        let src = "pub fn guard(&self) -> MutexGuard<'_, State> { self.m.lock() }\n";
        let r = lint_source("src/object.rs", src, &cfg_with(&[]));
        assert_eq!(rules_hit(&r), vec![Rule::LockOrder]);
    }

    // ---- allowlist parsing -------------------------------------------

    #[test]
    fn allowlist_parses_tags_and_skips_comments() {
        let tags = parse_allowlist("# header\n\nctr: why\n  other-tag : because\n");
        assert_eq!(
            tags.into_iter().collect::<Vec<_>>(),
            vec!["ctr".to_string(), "other-tag".to_string()]
        );
    }
}
