//! `ntx-lint`: the workspace's lock-discipline lint.
//!
//! Eight rules keep the sharded runtime — and, since the async era, the
//! executor and server riding on it — honest about their concurrency
//! contract (each is documented on [`Rule`]):
//!
//! - **R1 sync-import** — synchronisation primitives come only from the
//!   `crate::sync` shim, so `RUSTFLAGS="--cfg loom"` really swaps *every*
//!   primitive under the model checker.
//! - **R2 safety-comment** — every `unsafe` carries a `// SAFETY:`.
//! - **R3 relaxed-ordering** — `Ordering::Relaxed` only at sites with a
//!   `// relaxed(tag): justification` marker whose tag is recorded in
//!   the crate's `relaxed-allowlist.txt`.
//! - **R4 lock-order** — the documented order (object-slot mutex ≺
//!   wait-graph stripes, stripes in index order; timer heap and serve
//!   connection locks as leaves) is structurally enforced: wait-graph
//!   code never touches slots, stripe access goes through
//!   `stripe_of(`/`.iter()`, timer/serve code stays leaf-only, and no
//!   public function leaks a `MutexGuard`.
//! - **R5 guard-across-suspend** — no lock guard live across `.await`, a
//!   waiter park, or a `Poll::Pending` return.
//! - **R6 blocking-in-worker** — no blocking calls inside executor worker
//!   task context (`// R6-OK(reason):` to waive).
//! - **R7 drop-state-machine** — a `Drop` impl on a CAS-state-machine
//!   type must touch its state field or carry `// DROP-SAFETY:`.
//! - **R8 allowlist-staleness** — every crate's relaxed allowlist loads
//!   through one loader and dead entries are errors, workspace-wide
//!   ([`lint_workspace`]).
//!
//! There is no `syn` in this offline workspace, so the lint runs on a
//! small masking lexer ([`lexer`]) rather than a full parse: comments and
//! string bodies are blanked, then the rules are line-based token checks.
//! That makes the lint auditable and fast, at the cost of being
//! best-effort — it is a tripwire for discipline drift, not a verifier.
//!
//! It runs as a normal `cargo test -p ntx-lint`: unit tests prove each
//! rule fires on seeded violations, and the `runtime_tree` integration
//! test lints the real `crates/runtime` sources.

pub mod lexer;
pub mod rules;

use std::collections::BTreeSet;
use std::path::Path;

pub use rules::{Config, FileReport, Rule, Violation};

/// Aggregate result of linting a crate tree.
#[derive(Debug, Default)]
pub struct TreeReport {
    /// Violations across all files, plus one per stale allowlist entry.
    pub violations: Vec<Violation>,
    /// Number of `.rs` files linted.
    pub files: usize,
}

impl std::fmt::Display for TreeReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for v in &self.violations {
            writeln!(f, "{v}")?;
        }
        write!(
            f,
            "{} violation(s) across {} file(s)",
            self.violations.len(),
            self.files
        )
    }
}

/// Parse a `relaxed-allowlist.txt`: one `tag: justification` per line,
/// `#` comments and blank lines ignored.
pub fn parse_allowlist(text: &str) -> BTreeSet<String> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| l.split_once(':'))
        .map(|(tag, _)| tag.trim().to_string())
        .collect()
}

/// Lint every `.rs` file under `crate_root/src` (recursively) against the
/// crate's `relaxed-allowlist.txt`, including the staleness check: a tag
/// allowlisted but no longer used anywhere is itself a violation.
pub fn lint_crate(crate_root: &Path) -> std::io::Result<TreeReport> {
    let allow_path = crate_root.join("relaxed-allowlist.txt");
    let allow = match std::fs::read_to_string(&allow_path) {
        Ok(text) => parse_allowlist(&text),
        Err(_) => BTreeSet::new(),
    };
    let config = Config::workspace(allow.clone());

    let mut files = Vec::new();
    collect_rs(&crate_root.join("src"), &mut files)?;
    files.sort();

    let mut report = TreeReport::default();
    let mut used = BTreeSet::new();
    for path in &files {
        let src = std::fs::read_to_string(path)?;
        let label = path.display().to_string();
        let fr = rules::lint_source(&label, &src, &config);
        report.violations.extend(fr.violations);
        used.extend(fr.used_relaxed_tags);
        report.files += 1;
    }
    for stale in allow.difference(&used) {
        report.violations.push(Violation {
            file: allow_path.display().to_string(),
            line: 0,
            rule: Rule::AllowlistStale,
            msg: format!("allowlisted tag `{stale}` is no longer used by any source file"),
        });
    }
    Ok(report)
}

/// Lint several crates of one workspace in a single pass (R8): every
/// crate's `relaxed-allowlist.txt` goes through the same loader
/// ([`parse_allowlist`] via [`lint_crate`]), so the staleness guarantee —
/// dead entries are errors — holds uniformly across runtime, serve, and
/// every other member. Returns the concatenated report.
pub fn lint_workspace(root: &Path, crates: &[&str]) -> std::io::Result<TreeReport> {
    let mut total = TreeReport::default();
    for name in crates {
        let r = lint_crate(&root.join(name))?;
        total.violations.extend(r.violations);
        total.files += r.files;
    }
    Ok(total)
}

fn collect_rs(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rules::lint_source;

    fn cfg_with(tags: &[&str]) -> Config {
        Config::workspace(tags.iter().map(|t| t.to_string()).collect())
    }

    fn rules_hit(report: &FileReport) -> Vec<Rule> {
        report.violations.iter().map(|v| v.rule).collect()
    }

    // ---- R1: sync imports --------------------------------------------

    #[test]
    fn r1_flags_direct_std_sync_import() {
        let r = lint_source(
            "src/foo.rs",
            "use std::sync::Mutex;\nfn f() {}\n",
            &cfg_with(&[]),
        );
        assert_eq!(rules_hit(&r), vec![Rule::SyncImport]);
        assert_eq!(r.violations[0].line, 1);
    }

    #[test]
    fn r1_flags_parking_lot_and_qualified_loom() {
        let src = "use parking_lot::RwLock;\nfn f() { loom::model(|| {}); }\n";
        let r = lint_source("src/foo.rs", src, &cfg_with(&[]));
        assert_eq!(rules_hit(&r), vec![Rule::SyncImport, Rule::SyncImport]);
    }

    #[test]
    fn r1_exempts_the_shim_and_loom_models() {
        let src = "use std::sync::Mutex;\nuse loom::sync::Condvar;\n";
        for file in [
            "crates/runtime/src/sync.rs",
            "crates/runtime/src/loom_models.rs",
        ] {
            let r = lint_source(file, src, &cfg_with(&[]));
            assert!(r.violations.is_empty(), "{file} must be exempt");
        }
    }

    #[test]
    fn r1_exempts_cfg_test_modules() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    use std::sync::Barrier;\n}\n";
        let r = lint_source("src/foo.rs", src, &cfg_with(&[]));
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn r1_ignores_comments_and_strings() {
        let src = "// std::sync is banned here\nfn f() { g(\"parking_lot\"); }\n";
        let r = lint_source("src/foo.rs", src, &cfg_with(&[]));
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    // ---- R2: SAFETY comments -----------------------------------------

    #[test]
    fn r2_flags_unsafe_without_safety_comment() {
        let src = "fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
        let r = lint_source("src/foo.rs", src, &cfg_with(&[]));
        assert_eq!(rules_hit(&r), vec![Rule::SafetyComment]);
        assert_eq!(r.violations[0].line, 2);
    }

    #[test]
    fn r2_accepts_safety_comment_above_or_inline() {
        let src = "\
fn f(p: *const u8) -> u8 {
    // SAFETY: caller guarantees p is valid.
    unsafe { *p }
}
// SAFETY: no shared state.
unsafe impl Send for F {}
struct F;
";
        let r = lint_source("src/foo.rs", src, &cfg_with(&[]));
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn r2_applies_inside_test_modules_too() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f(p: *const u8) -> u8 { unsafe { *p } }\n}\n";
        let r = lint_source("src/foo.rs", src, &cfg_with(&[]));
        assert_eq!(rules_hit(&r), vec![Rule::SafetyComment]);
    }

    #[test]
    fn r2_ignores_unsafe_in_prose() {
        let src = "// this API is unsafe to misuse\nfn f() { g(\"unsafe\"); }\n";
        let r = lint_source("src/foo.rs", src, &cfg_with(&[]));
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    // ---- R3: Relaxed allowlist ---------------------------------------

    #[test]
    fn r3_flags_unmarked_relaxed() {
        let src = "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }\n";
        let r = lint_source("src/foo.rs", src, &cfg_with(&["ctr"]));
        assert_eq!(rules_hit(&r), vec![Rule::RelaxedOrdering]);
    }

    #[test]
    fn r3_flags_unknown_tag() {
        let src = "// relaxed(mystery): trust me\nlet x = c.load(Ordering::Relaxed);\n";
        let r = lint_source("src/foo.rs", src, &cfg_with(&["ctr"]));
        assert_eq!(rules_hit(&r), vec![Rule::RelaxedOrdering]);
        assert!(r.violations[0].msg.contains("mystery"));
    }

    #[test]
    fn r3_accepts_allowlisted_tag_and_records_usage() {
        let src = "\
fn f(c: &AtomicU64) {
    // relaxed(ctr): pure counter, atomicity is enough.
    let _ = c
        .fetch_add(1, Ordering::Relaxed);
}
";
        let r = lint_source("src/foo.rs", src, &cfg_with(&["ctr"]));
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert!(r.used_relaxed_tags.contains("ctr"));
    }

    #[test]
    fn r3_marker_does_not_leak_across_statements() {
        let src = "\
// relaxed(ctr): covers only the next statement.
let a = c.load(Ordering::Relaxed);
let b = c.load(Ordering::Relaxed);
";
        let r = lint_source("src/foo.rs", src, &cfg_with(&["ctr"]));
        assert_eq!(rules_hit(&r), vec![Rule::RelaxedOrdering]);
        assert_eq!(r.violations[0].line, 3);
    }

    #[test]
    fn r3_skips_test_modules() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { c.load(Ordering::Relaxed); }\n}\n";
        let r = lint_source("src/foo.rs", src, &cfg_with(&[]));
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    // ---- R4: lock order ----------------------------------------------

    #[test]
    fn r4_flags_slot_access_from_wait_graph_code() {
        let src = "fn bad(&self, m: &M) { let g = m.slot(3).inner.lock(); drop(g); }\n";
        let r = lint_source("src/deadlock.rs", src, &cfg_with(&[]));
        assert!(
            rules_hit(&r).contains(&Rule::LockOrder),
            "{:?}",
            r.violations
        );
    }

    #[test]
    fn r4_flags_ad_hoc_stripe_index() {
        let src = "fn bad(&self) { self.stripes[w as usize % N].0.lock(); }\n";
        let r = lint_source("src/deadlock.rs", src, &cfg_with(&[]));
        // Trips both the indexing and the unordered-lock sub-rule.
        assert!(!r.violations.is_empty());
        assert!(rules_hit(&r).iter().all(|&x| x == Rule::LockOrder));
    }

    #[test]
    fn r4_flags_unordered_multi_stripe_lock() {
        let src = "fn bad(&self) { let g = self.stripes.last().unwrap().0.lock(); }\n";
        let r = lint_source("src/deadlock.rs", src, &cfg_with(&[]));
        assert_eq!(rules_hit(&r), vec![Rule::LockOrder]);
    }

    #[test]
    fn r4_accepts_disciplined_stripe_access() {
        let src = "\
fn good(&self, w: u64) {
    self.stripes[stripe_of(w)].0.lock().remove(&w);
    let all: Vec<_> = self.stripes.iter().map(|s| s.0.lock()).collect();
    drop(all);
}
";
        let r = lint_source("src/deadlock.rs", src, &cfg_with(&[]));
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn r4_flags_public_guard_escape_anywhere() {
        let src = "pub fn guard(&self) -> MutexGuard<'_, State> { self.m.lock() }\n";
        let r = lint_source("src/object.rs", src, &cfg_with(&[]));
        assert_eq!(rules_hit(&r), vec![Rule::LockOrder]);
    }

    // ---- R4 (timer leaf, serve locks) --------------------------------

    #[test]
    fn r4_timer_must_not_reach_into_runtime_locks() {
        for needle in ["self.mgr.wait_graph.add(w)", "mgr.objects.get(&o)"] {
            let src = format!("fn fire(&self) {{ {needle}; }}\n");
            let r = lint_source("src/timer.rs", &src, &cfg_with(&[]));
            assert_eq!(rules_hit(&r), vec![Rule::LockOrder], "{needle}");
        }
    }

    #[test]
    fn r4_timer_heap_operations_are_fine() {
        let src = "\
fn schedule(&self) {
    let mut inner = self.inner.lock();
    inner.heap.push(entry);
    self.cv.notify_one();
}
";
        let r = lint_source("src/timer.rs", src, &cfg_with(&[]));
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn r4_timer_rule_is_scoped_to_timer_files() {
        let src = "fn f(&self) { self.wait_graph.add(w); }\n";
        let r = lint_source("src/manager.rs", src, &cfg_with(&[]));
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn r4_serve_flags_coupled_lock_acquisition() {
        let src = "fn bad(&self) { f(self.incoming.lock(), conn.inbox.lock()); }\n";
        let r = lint_source("src/server.rs", src, &cfg_with(&[]));
        assert_eq!(rules_hit(&r), vec![Rule::LockOrder]);
        assert!(r.violations[0].msg.contains("one at a time"));
    }

    #[test]
    fn r4_serve_accepts_one_lock_per_statement() {
        let src = "\
fn good(&self) {
    let n = self.incoming.lock().len();
    let msg = conn.inbox.lock().pop();
    conn.outbox.lock().push(msg);
}
";
        let r = lint_source("src/server.rs", src, &cfg_with(&[]));
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    // ---- R5: guards across suspend points ----------------------------

    #[test]
    fn r5_flags_guard_live_across_await() {
        let src = "\
async fn f(&self) {
    let q = self.queue.lock();
    self.notify().await;
}
";
        let r = lint_source("src/foo.rs", src, &cfg_with(&[]));
        assert_eq!(rules_hit(&r), vec![Rule::GuardAcrossSuspend]);
        assert!(r.violations[0].msg.contains("`q`"));
        assert_eq!(r.violations[0].line, 3);
    }

    #[test]
    fn r5_flags_guard_live_across_pending_return_and_park() {
        let src = "\
fn poll(&self) -> Poll<()> {
    let st = self.state.lock();
    if st.blocked { return Poll::Pending; }
    drop(st);
    let g = self.other.lock();
    std::thread::park();
    Poll::Ready(())
}
";
        let r = lint_source("src/foo.rs", src, &cfg_with(&[]));
        let hits = rules_hit(&r);
        assert_eq!(
            hits,
            vec![Rule::GuardAcrossSuspend, Rule::GuardAcrossSuspend],
            "{:?}",
            r.violations
        );
        assert_eq!(r.violations[0].line, 3); // `st` across the Pending return
        assert_eq!(r.violations[1].line, 6); // `g` across the park
    }

    #[test]
    fn r5_accepts_guard_dropped_before_suspending() {
        let src = "\
async fn f(&self) {
    let q = self.queue.lock();
    let next = q.front();
    drop(q);
    self.notify().await;
}
";
        let r = lint_source("src/foo.rs", src, &cfg_with(&[]));
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn r5_accepts_guard_released_by_scope_exit() {
        let src = "\
async fn f(&self) {
    {
        let q = self.queue.lock();
        q.push(1);
    }
    self.notify().await;
}
";
        let r = lint_source("src/foo.rs", src, &cfg_with(&[]));
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn r5_pending_match_arm_pattern_is_not_a_suspend() {
        // Inspecting a poll result (`Poll::Pending =>` as an arm pattern)
        // does not suspend the caller — the executor's poll_task does
        // exactly this with the future-slot guard live.
        let src = "\
fn poll_once(&self) {
    let slot = self.future.lock();
    match poll(&slot) {
        Poll::Pending => {}
        Poll::Ready(v) => finish(v),
    }
}
";
        let r = lint_source("src/foo.rs", src, &cfg_with(&[]));
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn r5_skips_test_modules() {
        let src = "\
#[cfg(test)]
mod tests {
    async fn f(&self) {
        let q = self.queue.lock();
        g().await;
    }
}
";
        let r = lint_source("src/foo.rs", src, &cfg_with(&[]));
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    // ---- R6: blocking calls in worker context ------------------------

    #[test]
    fn r6_flags_blocking_call_in_poll_task() {
        let src = "\
fn poll_task(&self, t: &Task) {
    let v = self.chan.recv();
    run(v);
}
";
        let r = lint_source("src/executor.rs", src, &cfg_with(&[]));
        assert_eq!(rules_hit(&r), vec![Rule::BlockingInWorker]);
        assert!(r.violations[0].msg.contains(".recv()"));
    }

    #[test]
    fn r6_waiver_comment_excuses_a_bounded_block() {
        let src = "\
fn poll_task(&self, t: &Task) {
    // R6-OK(shutdown): joining a finished thread, provably bounded.
    h.join();
}
";
        // `.join()` with no `()`-call match — use the exact needle form.
        let src = src.replace("h.join();", "let _ = h.join();");
        let r = lint_source("src/executor.rs", &src, &cfg_with(&[]));
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn r6_blocking_is_fine_outside_worker_fns() {
        let src = "\
fn worker_loop(&self) {
    let mut q = self.queue.lock();
    self.cv.wait(&mut q);
}
fn poll_task(&self, t: &Task) { run(t); }
fn after(&self) { h.join().unwrap(); }
";
        let r = lint_source("src/executor.rs", src, &cfg_with(&[]));
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    // ---- R7: Drop on CAS state machines ------------------------------

    #[test]
    fn r7_flags_drop_that_ignores_the_state_cas() {
        let src = "\
impl Drop for AccessFuture {
    fn drop(&mut self) {
        self.mgr.log(\"dropped\");
    }
}
";
        let r = lint_source("src/future.rs", src, &cfg_with(&[]));
        assert_eq!(rules_hit(&r), vec![Rule::DropStateMachine]);
        assert!(r.violations[0].msg.contains("AccessFuture"));
        assert_eq!(r.violations[0].line, 1);
    }

    #[test]
    fn r7_accepts_drop_that_touches_state() {
        let src = "\
impl Drop for AccessFuture {
    fn drop(&mut self) {
        match self.stage.swap(DONE) {
            GRANTED => self.release(),
            _ => {}
        }
    }
}
";
        let r = lint_source("src/future.rs", src, &cfg_with(&[]));
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn r7_accepts_an_explicit_waiver() {
        let src = "\
// DROP-SAFETY: the manager's shutdown already withdrew this ticket.
impl Drop for TurnstileTicket {
    fn drop(&mut self) {
        self.mgr.log(\"dropped\");
    }
}
";
        let r = lint_source("src/turnstile.rs", src, &cfg_with(&[]));
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn r7_ignores_drop_on_unlisted_types() {
        let src = "impl Drop for PlainBuffer {\n    fn drop(&mut self) {}\n}\n";
        let r = lint_source("src/foo.rs", src, &cfg_with(&[]));
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    // ---- R8: allowlist staleness -------------------------------------

    #[test]
    fn r8_stale_allowlist_entry_is_an_error() {
        let dir = std::env::temp_dir().join(format!("ntx-lint-r8-{}", std::process::id()));
        let src_dir = dir.join("src");
        std::fs::create_dir_all(&src_dir).unwrap();
        std::fs::write(
            dir.join("relaxed-allowlist.txt"),
            "live: used below\nstale: nothing references this tag\n",
        )
        .unwrap();
        std::fs::write(
            src_dir.join("lib.rs"),
            "fn f(c: &AtomicU64) {\n    // relaxed(live): counter.\n    c.load(Ordering::Relaxed);\n}\n",
        )
        .unwrap();

        let r = lint_crate(&dir).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
        let hits: Vec<Rule> = r.violations.iter().map(|v| v.rule).collect();
        assert_eq!(hits, vec![Rule::AllowlistStale], "{:?}", r.violations);
        assert!(r.violations[0].msg.contains("stale"));
        assert!(r.violations[0].file.ends_with("relaxed-allowlist.txt"));
    }

    #[test]
    fn r8_lint_workspace_concatenates_member_reports() {
        let root = std::env::temp_dir().join(format!("ntx-lint-ws-{}", std::process::id()));
        for (member, tag) in [("a", "a-tag"), ("b", "b-tag")] {
            let src_dir = root.join(member).join("src");
            std::fs::create_dir_all(&src_dir).unwrap();
            std::fs::write(
                root.join(member).join("relaxed-allowlist.txt"),
                format!("{tag}: dead in both members\n"),
            )
            .unwrap();
            std::fs::write(src_dir.join("lib.rs"), "fn f() {}\n").unwrap();
        }

        let r = lint_workspace(&root, &["a", "b"]).unwrap();
        std::fs::remove_dir_all(&root).unwrap();
        assert_eq!(r.files, 2);
        assert_eq!(
            r.violations.iter().map(|v| v.rule).collect::<Vec<_>>(),
            vec![Rule::AllowlistStale, Rule::AllowlistStale]
        );
    }

    // ---- allowlist parsing -------------------------------------------

    #[test]
    fn allowlist_parses_tags_and_skips_comments() {
        let tags = parse_allowlist("# header\n\nctr: why\n  other-tag : because\n");
        assert_eq!(
            tags.into_iter().collect::<Vec<_>>(),
            vec!["ctr".to_string(), "other-tag".to_string()]
        );
    }
}
