//! A small masking lexer for Rust source.
//!
//! The lint rules are substring checks over source lines; to keep them
//! from firing on prose, the lexer produces a *masked* copy of the file in
//! which every comment and every string/char-literal body is blanked to
//! spaces (newlines preserved, so byte offsets and line numbers survive).
//! Rules scan the masked text for code tokens and the original text for
//! the comment markers they require (`// SAFETY:`, `// relaxed(tag):`).
//!
//! Handled: line comments, nested block comments, plain and raw (byte)
//! string literals with any `#` count, char and byte-char literals, and
//! the char-literal/lifetime ambiguity (`'a'` vs `'a`).

/// Blank comments and literal bodies of `src` to spaces.
///
/// The result has exactly the bytes of `src` with every byte inside a
/// comment or string/char literal (delimiters included) replaced by `b' '`
/// — except newlines, which are kept so line structure is unchanged.
pub fn mask(src: &str) -> String {
    let b = src.as_bytes();
    let mut out = b.to_vec();
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'/' if b.get(i + 1) == Some(&b'/') => {
                while i < b.len() && b[i] != b'\n' {
                    out[i] = b' ';
                    i += 1;
                }
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let mut depth = 0usize;
                while i < b.len() {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        blank2(&mut out, &mut i, b);
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        blank2(&mut out, &mut i, b);
                        if depth == 0 {
                            break;
                        }
                    } else {
                        blank1(&mut out, &mut i, b);
                    }
                }
            }
            b'"' => mask_string(&mut out, &mut i, b),
            b'r' | b'b' if !prev_is_ident(b, i) => {
                // Possible raw/byte literal prefix: r" r#" br" b" b' br#"
                let mut j = i;
                if b[j] == b'b' {
                    j += 1;
                    if b.get(j) == Some(&b'\'') {
                        // byte-char literal b'x'
                        blank1(&mut out, &mut i, b); // the b
                        mask_char(&mut out, &mut i, b);
                        continue;
                    }
                }
                let raw = b.get(j) == Some(&b'r');
                if raw {
                    j += 1;
                }
                let mut hashes = 0usize;
                while raw && b.get(j + hashes) == Some(&b'#') {
                    hashes += 1;
                }
                let j = j + hashes;
                if b.get(j) == Some(&b'"') && (raw || b[i] == b'b') {
                    while i <= j {
                        blank1(&mut out, &mut i, b);
                    }
                    if raw {
                        mask_raw_tail(&mut out, &mut i, b, hashes);
                    } else {
                        // b"..." body: same escape rules as a plain string,
                        // whose opening quote was already blanked above.
                        mask_string_tail(&mut out, &mut i, b);
                    }
                } else {
                    i += 1; // ordinary identifier start
                }
            }
            b'\'' => {
                // Char literal or lifetime. `'\...'` and `'x'` are
                // literals; `'ident` (no closing quote right after one
                // char) is a lifetime and stays as code.
                let is_literal = match b.get(i + 1) {
                    Some(&b'\\') => true,
                    Some(_) => {
                        // find the char's byte length (UTF-8 aware)
                        let s = &src[i + 1..];
                        let ch_len = s.chars().next().map_or(0, |c| c.len_utf8());
                        b.get(i + 1 + ch_len) == Some(&b'\'')
                    }
                    None => false,
                };
                if is_literal {
                    mask_char(&mut out, &mut i, b);
                } else {
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }
    // The byte-level blanking never splits a UTF-8 sequence in code
    // position (multibyte chars only appear inside comments/strings, which
    // are blanked whole), so this cannot fail.
    String::from_utf8(out).expect("masking preserved UTF-8")
}

fn prev_is_ident(b: &[u8], i: usize) -> bool {
    i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_')
}

fn blank1(out: &mut [u8], i: &mut usize, b: &[u8]) {
    if b[*i] != b'\n' {
        out[*i] = b' ';
    }
    *i += 1;
}

fn blank2(out: &mut [u8], i: &mut usize, b: &[u8]) {
    blank1(out, i, b);
    if *i < b.len() {
        blank1(out, i, b);
    }
}

fn mask_string(out: &mut [u8], i: &mut usize, b: &[u8]) {
    blank1(out, i, b); // opening quote
    mask_string_tail(out, i, b);
}

fn mask_string_tail(out: &mut [u8], i: &mut usize, b: &[u8]) {
    while *i < b.len() {
        match b[*i] {
            b'\\' => blank2(out, i, b),
            b'"' => {
                blank1(out, i, b);
                return;
            }
            _ => blank1(out, i, b),
        }
    }
}

fn mask_raw_tail(out: &mut [u8], i: &mut usize, b: &[u8], hashes: usize) {
    while *i < b.len() {
        if b[*i] == b'"' {
            let close = (1..=hashes).all(|k| b.get(*i + k) == Some(&b'#'));
            if close {
                for _ in 0..=hashes {
                    if *i < b.len() {
                        blank1(out, i, b);
                    }
                }
                return;
            }
        }
        blank1(out, i, b);
    }
}

fn mask_char(out: &mut [u8], i: &mut usize, b: &[u8]) {
    blank1(out, i, b); // opening quote
    if *i < b.len() && b[*i] == b'\\' {
        blank1(out, i, b);
        // Escape body runs to the closing quote (covers \n, \', \u{..}).
        while *i < b.len() && b[*i] != b'\'' {
            blank1(out, i, b);
        }
    } else {
        // One (possibly multibyte) char.
        while *i < b.len() && b[*i] != b'\'' {
            blank1(out, i, b);
        }
    }
    if *i < b.len() {
        blank1(out, i, b); // closing quote
    }
}

/// 0-based line ranges (inclusive) of items gated behind a `test` cfg —
/// `#[cfg(test)]`, `#[cfg(all(loom, test))]`, and friends.
///
/// Scans the *masked* source: each `#[...]` attribute whose text contains
/// both `cfg` and `test` marks the following item; the item's extent is the
/// matching `{`..`}` block (or up to the first `;` for block-less items).
pub fn test_regions(masked: &str) -> Vec<(usize, usize)> {
    let b = masked.as_bytes();
    let mut regions = Vec::new();
    let mut i = 0;
    while i < b.len() {
        if b[i] == b'#' && b.get(i + 1) == Some(&b'[') {
            let start = i;
            let mut j = i + 2;
            while j < b.len() && b[j] != b']' {
                j += 1;
            }
            let attr = &masked[i + 2..j.min(masked.len())];
            // `test` must appear outside a `not(test)` — production items
            // gated on `#[cfg(not(test))]`/`cfg_attr(not(test), ..)` are
            // not test code.
            let positive_test = attr.replace("not(test)", "").contains("test");
            if attr.contains("cfg") && positive_test {
                // Find the item body: first `{` before any `;`.
                let mut k = j;
                let end;
                loop {
                    k += 1;
                    if k >= b.len() || b[k] == b';' {
                        end = k.min(b.len().saturating_sub(1));
                        break;
                    }
                    if b[k] == b'{' {
                        let mut depth = 1usize;
                        while depth > 0 {
                            k += 1;
                            if k >= b.len() {
                                break;
                            }
                            match b[k] {
                                b'{' => depth += 1,
                                b'}' => depth -= 1,
                                _ => {}
                            }
                        }
                        end = k.min(b.len().saturating_sub(1));
                        break;
                    }
                }
                regions.push((line_of(masked, start), line_of(masked, end)));
                i = end + 1;
                continue;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    regions
}

fn line_of(s: &str, byte: usize) -> usize {
    s.as_bytes()[..byte.min(s.len())]
        .iter()
        .filter(|&&c| c == b'\n')
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_line_and_block_comments() {
        let m = mask("let a = 1; // std::sync here\n/* unsafe /* nested */ still */ let b;");
        assert!(!m.contains("std::sync"));
        assert!(!m.contains("unsafe"));
        assert!(m.contains("let a = 1;"));
        assert!(m.contains("let b;"));
    }

    #[test]
    fn masks_strings_and_raw_strings() {
        let m = mask(r###"let s = "std::sync"; let r = r#"unsafe " quote"#; done();"###);
        assert!(!m.contains("std::sync"));
        assert!(!m.contains("unsafe"));
        assert!(m.contains("done();"));
    }

    #[test]
    fn distinguishes_char_literals_from_lifetimes() {
        let m = mask("fn f<'a>(x: &'a str) { let q = '\"'; let n = '\\n'; g(x) }");
        assert!(m.contains("<'a>"), "lifetime must survive: {m}");
        assert!(m.contains("&'a str"));
        assert!(!m.contains('"'), "quote char literal must be blanked");
        assert!(m.contains("g(x)"));
    }

    #[test]
    fn string_escapes_do_not_end_the_literal_early() {
        let m = mask(r#"let s = "a\"unsafe\""; h();"#);
        assert!(!m.contains("unsafe"));
        assert!(m.contains("h();"));
    }

    #[test]
    fn finds_cfg_test_module_extent() {
        let src = "mod a {}\n#[cfg(test)]\nmod tests {\n  fn t() {}\n}\nmod z {}\n";
        let masked = mask(src);
        assert_eq!(test_regions(&masked), vec![(1, 4)]);
    }

    #[test]
    fn finds_cfg_all_loom_test_region() {
        let src = "#[cfg(all(loom, test))]\nmod loom_models;\nfn f() {}\n";
        let masked = mask(src);
        assert_eq!(test_regions(&masked), vec![(0, 1)]);
    }

    #[test]
    fn non_test_cfg_is_not_a_region() {
        let src = "#[cfg(feature = \"x\")]\nmod m {\n}\n";
        // The cfg text is inside a string... but attr contents are masked
        // too, so only the `cfg` ident survives — no `test`, no region.
        assert!(test_regions(&mask(src)).is_empty());
    }
}
