//! The four lock-discipline rules.
//!
//! All rules are line-based best-effort checks over the masked source (see
//! [`crate::lexer`]): precise enough to catch every realistic violation in
//! this workspace, simple enough to audit by eye. Each rule documents the
//! invariant it protects and the escape hatch for legitimate exceptions.

use std::collections::BTreeSet;
use std::fmt;

use crate::lexer::{mask, test_regions};

/// Which rule a [`Violation`] broke.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// R1: synchronisation primitives are imported only through the
    /// `crate::sync` shim — never `std::sync`, `parking_lot`, or `loom`
    /// directly. The shim is what makes the crate model-checkable: a
    /// direct import would silently escape loom's schedule exploration.
    SyncImport,
    /// R2: every `unsafe` block or impl carries a `// SAFETY:` comment on
    /// it or immediately above it.
    SafetyComment,
    /// R3: `Ordering::Relaxed` appears only next to a
    /// `// relaxed(<tag>): <justification>` marker whose tag is in the
    /// crate's `relaxed-allowlist.txt`.
    RelaxedOrdering,
    /// R4: the documented lock order — object-slot mutex ≺ wait-graph
    /// stripes, stripes in index order — is never inverted: wait-graph
    /// code (which holds stripe locks) must not reach into object slots,
    /// single-stripe access goes through `stripe_of(`, and whole-graph
    /// acquisition walks the stripes in index order via `.iter()`. The
    /// table extends to the PR 8 locks: the timer binary-heap mutex is a
    /// *leaf* (timer code touches no slots, stripes, or wait graph), and
    /// the serve reactor's connection-list lock is taken alone — never in
    /// the same expression as a per-connection inbox/outbox/waker lock.
    LockOrder,
    /// R5: no lock guard may be live across a suspend point — an `.await`,
    /// a waiter park (`park_until`/`thread::park`), or a `Poll::Pending`
    /// return out of a `poll`. A guard captured across suspension is held
    /// for an unbounded schedule gap and deadlocks the waker that needs
    /// the same lock to deliver the wake.
    GuardAcrossSuspend,
    /// R6: no blocking calls (`thread::sleep`, parks, channel receives,
    /// condvar waits, `join`) inside executor worker task context — the
    /// body of `poll_task`. A blocked worker freezes every session
    /// multiplexed onto it. Legitimate exceptions carry `// R6-OK(reason):`.
    BlockingInWorker,
    /// R7: a `Drop` impl on a CAS-state-machine type must consume or test
    /// its state field (the drop/grant/timeout race is arbitrated by that
    /// CAS, and a drop that ignores it leaks queue nodes or double-frees a
    /// grant) — or carry an explicit `// DROP-SAFETY:` comment.
    DropStateMachine,
    /// R8: relaxed-allowlist staleness, workspace-wide: every crate's
    /// allowlist goes through the one loader, and an allowlisted tag no
    /// source file uses any more is an error — the audit cannot rot.
    AllowlistStale,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Rule::SyncImport => "R1/sync-import",
            Rule::SafetyComment => "R2/safety-comment",
            Rule::RelaxedOrdering => "R3/relaxed-ordering",
            Rule::LockOrder => "R4/lock-order",
            Rule::GuardAcrossSuspend => "R5/guard-across-suspend",
            Rule::BlockingInWorker => "R6/blocking-in-worker",
            Rule::DropStateMachine => "R7/drop-state-machine",
            Rule::AllowlistStale => "R8/allowlist-staleness",
        };
        f.write_str(s)
    }
}

/// One finding: file, 1-based line, rule, and a human message.
#[derive(Debug, Clone)]
pub struct Violation {
    /// File the violation is in (as labelled by the caller).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The rule broken.
    pub rule: Rule,
    /// What is wrong and how to fix it.
    pub msg: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.msg
        )
    }
}

/// Lint configuration: exemptions and the Relaxed tag allowlist.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// File-name suffixes exempt from R1 (the shim itself, and the loom
    /// models that must name `loom::` APIs).
    pub sync_exempt: Vec<String>,
    /// Tags allowed in `// relaxed(tag):` markers.
    pub relaxed_tags: BTreeSet<String>,
    /// Function names whose bodies are executor worker *task* context:
    /// blocking calls inside them break every multiplexed session (R6).
    pub worker_fns: Vec<String>,
    /// R7's state map: CAS-state-machine type name → the state-field
    /// tokens its `Drop` impl must touch (any one suffices).
    pub drop_state: Vec<(String, Vec<String>)>,
}

impl Config {
    /// The workspace's standard configuration, with the given allowlist.
    pub fn workspace(relaxed_tags: BTreeSet<String>) -> Config {
        Config {
            sync_exempt: vec!["src/sync.rs".into(), "src/loom_models.rs".into()],
            relaxed_tags,
            worker_fns: vec!["poll_task".into()],
            drop_state: vec![
                ("AccessFuture".into(), vec!["stage".into()]),
                ("TurnstileTicket".into(), vec!["commit_ts".into()]),
                ("TimerToken".into(), vec!["cancelled".into()]),
                ("TimerEntry".into(), vec!["cancelled".into()]),
            ],
        }
    }
}

/// Result of linting one file: findings plus the relaxed tags it used
/// (for allowlist staleness checks across the tree).
#[derive(Debug, Default)]
pub struct FileReport {
    /// All violations found, in line order.
    pub violations: Vec<Violation>,
    /// Every allowlisted tag referenced by a `// relaxed(tag):` marker.
    pub used_relaxed_tags: BTreeSet<String>,
}

/// True if `line` contains `word` bounded by non-identifier characters.
fn has_token(line: &str, word: &str) -> bool {
    let b = line.as_bytes();
    let mut from = 0;
    while let Some(pos) = line[from..].find(word) {
        let start = from + pos;
        let end = start + word.len();
        let left_ok = start == 0 || !(b[start - 1].is_ascii_alphanumeric() || b[start - 1] == b'_');
        let right_ok = end >= b.len() || !(b[end].is_ascii_alphanumeric() || b[end] == b'_');
        if left_ok && right_ok {
            return true;
        }
        from = end;
    }
    false
}

/// Extract the tag of a `relaxed(<tag>)` marker on `raw`, if any.
fn relaxed_marker(raw: &str) -> Option<&str> {
    let at = raw.find("relaxed(")?;
    let rest = &raw[at + "relaxed(".len()..];
    let close = rest.find(')')?;
    Some(rest[..close].trim())
}

/// How far up a marker/SAFETY comment search walks before giving up.
const LOOKBACK: usize = 8;

/// Search `raw_lines[line]` and the preceding lines of the same statement
/// (stopping at `;`, `{`, or `}` in masked code) for `pred`.
fn find_upward<'a, T>(
    raw_lines: &'a [&str],
    masked_lines: &[&str],
    line: usize,
    pred: impl Fn(&'a str) -> Option<T>,
) -> Option<T> {
    if let Some(t) = pred(raw_lines[line]) {
        return Some(t);
    }
    for back in 1..=LOOKBACK.min(line) {
        let i = line - back;
        if let Some(t) = pred(raw_lines[i]) {
            return Some(t);
        }
        // A statement/item boundary ends the search — but only after the
        // line itself was checked (markers may trail the boundary line).
        if masked_lines[i].contains([';', '{', '}']) {
            break;
        }
    }
    None
}

fn in_regions(regions: &[(usize, usize)], line: usize) -> bool {
    regions.iter().any(|&(a, b)| a <= line && line <= b)
}

/// A `let`-bound lock guard tracked by R5.
struct LiveGuard {
    name: String,
    /// Brace depth the binding lives at; the guard dies when the scope
    /// closes (or at an explicit `drop(name)`).
    depth: usize,
    line: usize,
}

/// Extract the binding name of a `let <name> = ….lock()` on this masked
/// line, if any (single-line bindings only — the realistic shape).
fn guard_binding(code: &str) -> Option<String> {
    if !code.contains(".lock()") {
        return None;
    }
    let at = code.find("let ")?;
    let rest = code[at + 4..].trim_start();
    let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
    // Unwrap the common fallible-binding patterns of `if let`/`while let`.
    let rest = rest
        .strip_prefix("Some(")
        .or_else(|| rest.strip_prefix("Ok("))
        .unwrap_or(rest);
    let name: String = rest
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    (!name.is_empty() && name != "_").then_some(name)
}

/// The suspend token on this masked line, if any: an `.await`, a waiter
/// park, or a `Poll::Pending` *produced* (returned or yielded by a match
/// arm — `Poll::Pending =>` as an arm *pattern* merely inspects one).
fn suspend_token(code: &str) -> Option<&'static str> {
    if code.contains(".await") {
        return Some(".await");
    }
    if code.contains("return Poll::Pending") || code.contains("=> Poll::Pending") {
        return Some("Poll::Pending");
    }
    for park in ["park_until(", "park_timeout(", "thread::park", ".park("] {
        if code.contains(park) {
            return Some("park");
        }
    }
    None
}

/// Calls that block the calling thread (R6's ban list for worker task
/// context). Lock acquisitions are deliberately absent: short leaf-ordered
/// mutexes are the workspace's bread and butter; what a worker must never
/// do is sleep, park, join, or wait on I/O or a channel.
const BLOCKING_CALLS: &[&str] = &[
    "thread::sleep",
    "thread::park",
    "park_timeout(",
    ".join()",
    ".recv()",
    ".recv_timeout(",
    ".wait(",
    ".wait_for(",
    "File::open",
    "File::create",
    "read_to_string(",
];

/// Lint one file's source text. `file` is the label used in findings and
/// for per-file rules (R1 exemptions match on suffix; R4 applies to
/// `deadlock.rs`, `timer.rs`, and `server.rs`).
pub fn lint_source(file: &str, src: &str, config: &Config) -> FileReport {
    let masked = mask(src);
    let tests = test_regions(&masked);
    let raw_lines: Vec<&str> = src.lines().collect();
    let masked_lines: Vec<&str> = masked.lines().collect();
    let mut report = FileReport::default();

    let sync_exempt = config
        .sync_exempt
        .iter()
        .any(|s| file.ends_with(s.as_str()));
    let is_wait_graph = file.ends_with("deadlock.rs");
    let is_timer = file.ends_with("timer.rs");
    let is_serve_server = file.ends_with("server.rs");

    // Scope state for R5/R6: brace depth, live guards, and worker-fn
    // region entry depths.
    let mut depth = 0usize;
    let mut guards: Vec<LiveGuard> = Vec::new();
    let mut worker_entry: Vec<usize> = Vec::new();

    for (i, code) in masked_lines.iter().enumerate() {
        let in_test = in_regions(&tests, i);
        let depth_before = depth;
        let opens = code.matches('{').count();
        let closes = code.matches('}').count();
        depth = (depth + opens).saturating_sub(closes);

        // R5: a live guard across a suspend point. Checked before the
        // line's scope exits are applied to the guard set, so a suspend
        // and a close brace on one line still see the guard.
        if !in_test {
            if let Some(tok) = suspend_token(code) {
                for g in &guards {
                    report.violations.push(Violation {
                        file: file.into(),
                        line: i + 1,
                        rule: Rule::GuardAcrossSuspend,
                        msg: format!(
                            "lock guard `{}` (bound on line {}) is live across a \
                             suspend point (`{tok}`); drop it before suspending — \
                             the waker that resolves this suspension may need the \
                             same lock",
                            g.name,
                            g.line + 1
                        ),
                    });
                }
            }
            guards.retain(|g| !code.contains(&format!("drop({})", g.name)));
            if let Some(name) = guard_binding(code) {
                guards.push(LiveGuard {
                    name,
                    depth,
                    line: i,
                });
            }
        }
        guards.retain(|g| depth >= g.depth);

        // R6: worker task context tracking and blocking-call ban.
        if config
            .worker_fns
            .iter()
            .any(|f| code.contains("fn ") && has_token(code, f))
        {
            worker_entry.push(depth_before);
        }
        if !worker_entry.is_empty() && !in_test {
            if let Some(call) = BLOCKING_CALLS.iter().find(|c| code.contains(*c)) {
                let excused = find_upward(&raw_lines, &masked_lines, i, |raw| {
                    raw.contains("R6-OK(").then_some(())
                })
                .is_some();
                if !excused {
                    report.violations.push(Violation {
                        file: file.into(),
                        line: i + 1,
                        rule: Rule::BlockingInWorker,
                        msg: format!(
                            "blocking call `{call}` inside executor worker task \
                             context; a blocked worker freezes every session \
                             multiplexed onto it (annotate `// R6-OK(reason):` \
                             if provably bounded)"
                        ),
                    });
                }
            }
        }
        while worker_entry.last().is_some_and(|&e| depth <= e) {
            worker_entry.pop();
        }

        // R1: imports and qualified paths outside the shim.
        if !sync_exempt && !in_test {
            for needle in ["std::sync", "parking_lot", "loom::"] {
                if code.contains(needle) {
                    report.violations.push(Violation {
                        file: file.into(),
                        line: i + 1,
                        rule: Rule::SyncImport,
                        msg: format!(
                            "`{needle}` referenced directly; import synchronisation \
                             primitives through `crate::sync` so loom builds stay exhaustive"
                        ),
                    });
                }
            }
        }

        // R2: unsafe needs SAFETY. Applies everywhere, tests included —
        // test unsafe is no safer.
        if has_token(code, "unsafe")
            && find_upward(&raw_lines, &masked_lines, i, |raw| {
                raw.contains("SAFETY:").then_some(())
            })
            .is_none()
        {
            report.violations.push(Violation {
                file: file.into(),
                line: i + 1,
                rule: Rule::SafetyComment,
                msg: "`unsafe` without a `// SAFETY:` comment on or above it".into(),
            });
        }

        // R3: Relaxed needs an allowlisted marker (production code only;
        // test-module atomics are not part of the audited surface).
        if !in_test && has_token(code, "Relaxed") {
            match find_upward(&raw_lines, &masked_lines, i, relaxed_marker) {
                None => report.violations.push(Violation {
                    file: file.into(),
                    line: i + 1,
                    rule: Rule::RelaxedOrdering,
                    msg: "`Ordering::Relaxed` without a `// relaxed(tag): justification` \
                          marker; use an allowlisted tag or a stronger ordering"
                        .into(),
                }),
                Some(tag) if !config.relaxed_tags.contains(tag) => {
                    report.violations.push(Violation {
                        file: file.into(),
                        line: i + 1,
                        rule: Rule::RelaxedOrdering,
                        msg: format!("relaxed tag `{tag}` is not in relaxed-allowlist.txt"),
                    });
                }
                Some(tag) => {
                    report.used_relaxed_tags.insert(tag.to_string());
                }
            }
        }

        // R4: lock-order discipline.
        if is_wait_graph {
            for needle in [".inner.lock()", "slot(", "objects.get("] {
                if code.contains(needle) {
                    report.violations.push(Violation {
                        file: file.into(),
                        line: i + 1,
                        rule: Rule::LockOrder,
                        msg: format!(
                            "wait-graph code must not touch object slots (`{needle}`): \
                             stripe locks are acquired after slot mutexes, never before"
                        ),
                    });
                }
            }
            if code.contains("stripes[") && !code.contains("stripe_of(") {
                report.violations.push(Violation {
                    file: file.into(),
                    line: i + 1,
                    rule: Rule::LockOrder,
                    msg: "stripe indexing must go through `stripe_of(` — ad-hoc indices \
                          break the single-stripe locking contract"
                        .into(),
                });
            }
            if code.contains(".lock()")
                && code.contains("stripes")
                && !code.contains("stripe_of(")
                && !code.contains(".iter()")
            {
                report.violations.push(Violation {
                    file: file.into(),
                    line: i + 1,
                    rule: Rule::LockOrder,
                    msg: "multi-stripe acquisition must walk `stripes.iter()` (index \
                          order) — any other order can deadlock against a detector"
                        .into(),
                });
            }
        }

        // R4 (timer): the binary-heap mutex is a leaf. Timer code must
        // never reach into object slots, the wait graph, or its stripes —
        // callbacks fire only after the heap lock is released.
        if is_timer && !in_test {
            for needle in [".slot(", "objects.get(", "wait_graph", "stripes"] {
                if code.contains(needle) {
                    report.violations.push(Violation {
                        file: file.into(),
                        line: i + 1,
                        rule: Rule::LockOrder,
                        msg: format!(
                            "timer code must not touch `{needle}`: the heap mutex is \
                             a leaf in the lock order — expiry callbacks take their \
                             locks only after it is released"
                        ),
                    });
                }
            }
        }

        // R4 (serve): the reactor's connection-list lock and the
        // per-connection inbox/outbox/waker locks are taken one at a time;
        // two in one expression couples their (deliberately unordered)
        // positions.
        if is_serve_server && !in_test {
            let serve_locks = [
                "incoming.lock()",
                "inbox.lock()",
                "outbox.lock()",
                "waker.lock()",
            ];
            let taken: Vec<&str> = serve_locks
                .iter()
                .copied()
                .filter(|l| code.contains(l))
                .collect();
            if taken.len() >= 2 {
                report.violations.push(Violation {
                    file: file.into(),
                    line: i + 1,
                    rule: Rule::LockOrder,
                    msg: format!(
                        "serve locks {taken:?} acquired in one expression; the \
                         connection list and per-connection locks are leaf-ordered \
                         and must be taken one at a time"
                    ),
                });
            }
        }

        // R4 (all files): lock guards must not escape through public
        // signatures — a caller holding a guard is outside the discipline.
        if !in_test && code.contains("pub fn") && code.contains("->") && code.contains("MutexGuard")
        {
            report.violations.push(Violation {
                file: file.into(),
                line: i + 1,
                rule: Rule::LockOrder,
                msg: "public function returns a `MutexGuard`; guards must stay inside \
                      the module that owns the lock order"
                    .into(),
            });
        }
    }

    check_drop_impls(file, &raw_lines, &masked_lines, config, &mut report);
    report
}

/// R7: every `Drop` impl on a configured CAS-state-machine type must touch
/// one of its state-field tokens or carry a `// DROP-SAFETY:` comment in
/// (or directly above) the impl.
fn check_drop_impls(
    file: &str,
    raw_lines: &[&str],
    masked_lines: &[&str],
    config: &Config,
    report: &mut FileReport,
) {
    for (i, code) in masked_lines.iter().enumerate() {
        if !(code.contains("impl") && has_token(code, "Drop") && code.contains(" for ")) {
            continue;
        }
        let Some((ty, tokens)) = config.drop_state.iter().find(|(ty, _)| has_token(code, ty))
        else {
            continue;
        };
        // Walk the impl body to its closing brace.
        let mut depth = 0usize;
        let mut opened = false;
        let mut end = i;
        for (j, body) in masked_lines.iter().enumerate().skip(i) {
            depth += body.matches('{').count();
            if depth > 0 {
                opened = true;
            }
            depth = depth.saturating_sub(body.matches('}').count());
            end = j;
            if opened && depth == 0 {
                break;
            }
        }
        let touches_state = (i..=end).any(|j| tokens.iter().any(|t| has_token(masked_lines[j], t)));
        let has_waiver = (i.saturating_sub(2)..=end).any(|j| raw_lines[j].contains("DROP-SAFETY:"));
        if !touches_state && !has_waiver {
            report.violations.push(Violation {
                file: file.into(),
                line: i + 1,
                rule: Rule::DropStateMachine,
                msg: format!(
                    "`Drop` for CAS-state-machine type `{ty}` never touches its state \
                     field ({tokens:?}); the drop/grant race is arbitrated by that \
                     CAS — resolve it here or explain with `// DROP-SAFETY:`"
                ),
            });
        }
    }
}
