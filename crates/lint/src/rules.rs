//! The four lock-discipline rules.
//!
//! All rules are line-based best-effort checks over the masked source (see
//! [`crate::lexer`]): precise enough to catch every realistic violation in
//! this workspace, simple enough to audit by eye. Each rule documents the
//! invariant it protects and the escape hatch for legitimate exceptions.

use std::collections::BTreeSet;
use std::fmt;

use crate::lexer::{mask, test_regions};

/// Which rule a [`Violation`] broke.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// R1: synchronisation primitives are imported only through the
    /// `crate::sync` shim — never `std::sync`, `parking_lot`, or `loom`
    /// directly. The shim is what makes the crate model-checkable: a
    /// direct import would silently escape loom's schedule exploration.
    SyncImport,
    /// R2: every `unsafe` block or impl carries a `// SAFETY:` comment on
    /// it or immediately above it.
    SafetyComment,
    /// R3: `Ordering::Relaxed` appears only next to a
    /// `// relaxed(<tag>): <justification>` marker whose tag is in the
    /// crate's `relaxed-allowlist.txt`.
    RelaxedOrdering,
    /// R4: the documented lock order — object-slot mutex ≺ wait-graph
    /// stripes, stripes in index order — is never inverted: wait-graph
    /// code (which holds stripe locks) must not reach into object slots,
    /// single-stripe access goes through `stripe_of(`, and whole-graph
    /// acquisition walks the stripes in index order via `.iter()`.
    LockOrder,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Rule::SyncImport => "R1/sync-import",
            Rule::SafetyComment => "R2/safety-comment",
            Rule::RelaxedOrdering => "R3/relaxed-ordering",
            Rule::LockOrder => "R4/lock-order",
        };
        f.write_str(s)
    }
}

/// One finding: file, 1-based line, rule, and a human message.
#[derive(Debug, Clone)]
pub struct Violation {
    /// File the violation is in (as labelled by the caller).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The rule broken.
    pub rule: Rule,
    /// What is wrong and how to fix it.
    pub msg: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.msg
        )
    }
}

/// Lint configuration: exemptions and the Relaxed tag allowlist.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// File-name suffixes exempt from R1 (the shim itself, and the loom
    /// models that must name `loom::` APIs).
    pub sync_exempt: Vec<String>,
    /// Tags allowed in `// relaxed(tag):` markers.
    pub relaxed_tags: BTreeSet<String>,
}

impl Config {
    /// The workspace's standard configuration, with the given allowlist.
    pub fn workspace(relaxed_tags: BTreeSet<String>) -> Config {
        Config {
            sync_exempt: vec!["src/sync.rs".into(), "src/loom_models.rs".into()],
            relaxed_tags,
        }
    }
}

/// Result of linting one file: findings plus the relaxed tags it used
/// (for allowlist staleness checks across the tree).
#[derive(Debug, Default)]
pub struct FileReport {
    /// All violations found, in line order.
    pub violations: Vec<Violation>,
    /// Every allowlisted tag referenced by a `// relaxed(tag):` marker.
    pub used_relaxed_tags: BTreeSet<String>,
}

/// True if `line` contains `word` bounded by non-identifier characters.
fn has_token(line: &str, word: &str) -> bool {
    let b = line.as_bytes();
    let mut from = 0;
    while let Some(pos) = line[from..].find(word) {
        let start = from + pos;
        let end = start + word.len();
        let left_ok = start == 0 || !(b[start - 1].is_ascii_alphanumeric() || b[start - 1] == b'_');
        let right_ok = end >= b.len() || !(b[end].is_ascii_alphanumeric() || b[end] == b'_');
        if left_ok && right_ok {
            return true;
        }
        from = end;
    }
    false
}

/// Extract the tag of a `relaxed(<tag>)` marker on `raw`, if any.
fn relaxed_marker(raw: &str) -> Option<&str> {
    let at = raw.find("relaxed(")?;
    let rest = &raw[at + "relaxed(".len()..];
    let close = rest.find(')')?;
    Some(rest[..close].trim())
}

/// How far up a marker/SAFETY comment search walks before giving up.
const LOOKBACK: usize = 8;

/// Search `raw_lines[line]` and the preceding lines of the same statement
/// (stopping at `;`, `{`, or `}` in masked code) for `pred`.
fn find_upward<'a, T>(
    raw_lines: &'a [&str],
    masked_lines: &[&str],
    line: usize,
    pred: impl Fn(&'a str) -> Option<T>,
) -> Option<T> {
    if let Some(t) = pred(raw_lines[line]) {
        return Some(t);
    }
    for back in 1..=LOOKBACK.min(line) {
        let i = line - back;
        if let Some(t) = pred(raw_lines[i]) {
            return Some(t);
        }
        // A statement/item boundary ends the search — but only after the
        // line itself was checked (markers may trail the boundary line).
        if masked_lines[i].contains([';', '{', '}']) {
            break;
        }
    }
    None
}

fn in_regions(regions: &[(usize, usize)], line: usize) -> bool {
    regions.iter().any(|&(a, b)| a <= line && line <= b)
}

/// Lint one file's source text. `file` is the label used in findings and
/// for per-file rules (R1 exemptions match on suffix; R4 applies to
/// `deadlock.rs`).
pub fn lint_source(file: &str, src: &str, config: &Config) -> FileReport {
    let masked = mask(src);
    let tests = test_regions(&masked);
    let raw_lines: Vec<&str> = src.lines().collect();
    let masked_lines: Vec<&str> = masked.lines().collect();
    let mut report = FileReport::default();

    let sync_exempt = config
        .sync_exempt
        .iter()
        .any(|s| file.ends_with(s.as_str()));
    let is_wait_graph = file.ends_with("deadlock.rs");

    for (i, code) in masked_lines.iter().enumerate() {
        let in_test = in_regions(&tests, i);

        // R1: imports and qualified paths outside the shim.
        if !sync_exempt && !in_test {
            for needle in ["std::sync", "parking_lot", "loom::"] {
                if code.contains(needle) {
                    report.violations.push(Violation {
                        file: file.into(),
                        line: i + 1,
                        rule: Rule::SyncImport,
                        msg: format!(
                            "`{needle}` referenced directly; import synchronisation \
                             primitives through `crate::sync` so loom builds stay exhaustive"
                        ),
                    });
                }
            }
        }

        // R2: unsafe needs SAFETY. Applies everywhere, tests included —
        // test unsafe is no safer.
        if has_token(code, "unsafe")
            && find_upward(&raw_lines, &masked_lines, i, |raw| {
                raw.contains("SAFETY:").then_some(())
            })
            .is_none()
        {
            report.violations.push(Violation {
                file: file.into(),
                line: i + 1,
                rule: Rule::SafetyComment,
                msg: "`unsafe` without a `// SAFETY:` comment on or above it".into(),
            });
        }

        // R3: Relaxed needs an allowlisted marker (production code only;
        // test-module atomics are not part of the audited surface).
        if !in_test && has_token(code, "Relaxed") {
            match find_upward(&raw_lines, &masked_lines, i, relaxed_marker) {
                None => report.violations.push(Violation {
                    file: file.into(),
                    line: i + 1,
                    rule: Rule::RelaxedOrdering,
                    msg: "`Ordering::Relaxed` without a `// relaxed(tag): justification` \
                          marker; use an allowlisted tag or a stronger ordering"
                        .into(),
                }),
                Some(tag) if !config.relaxed_tags.contains(tag) => {
                    report.violations.push(Violation {
                        file: file.into(),
                        line: i + 1,
                        rule: Rule::RelaxedOrdering,
                        msg: format!("relaxed tag `{tag}` is not in relaxed-allowlist.txt"),
                    });
                }
                Some(tag) => {
                    report.used_relaxed_tags.insert(tag.to_string());
                }
            }
        }

        // R4: lock-order discipline.
        if is_wait_graph {
            for needle in [".inner.lock()", "slot(", "objects.get("] {
                if code.contains(needle) {
                    report.violations.push(Violation {
                        file: file.into(),
                        line: i + 1,
                        rule: Rule::LockOrder,
                        msg: format!(
                            "wait-graph code must not touch object slots (`{needle}`): \
                             stripe locks are acquired after slot mutexes, never before"
                        ),
                    });
                }
            }
            if code.contains("stripes[") && !code.contains("stripe_of(") {
                report.violations.push(Violation {
                    file: file.into(),
                    line: i + 1,
                    rule: Rule::LockOrder,
                    msg: "stripe indexing must go through `stripe_of(` — ad-hoc indices \
                          break the single-stripe locking contract"
                        .into(),
                });
            }
            if code.contains(".lock()")
                && code.contains("stripes")
                && !code.contains("stripe_of(")
                && !code.contains(".iter()")
            {
                report.violations.push(Violation {
                    file: file.into(),
                    line: i + 1,
                    rule: Rule::LockOrder,
                    msg: "multi-stripe acquisition must walk `stripes.iter()` (index \
                          order) — any other order can deadlock against a detector"
                        .into(),
                });
            }
        }

        // R4 (all files): lock guards must not escape through public
        // signatures — a caller holding a guard is outside the discipline.
        if !in_test && code.contains("pub fn") && code.contains("->") && code.contains("MutexGuard")
        {
            report.violations.push(Violation {
                file: file.into(),
                line: i + 1,
                rule: Rule::LockOrder,
                msg: "public function returns a `MutexGuard`; guards must stay inside \
                      the module that owns the lock order"
                    .into(),
            });
        }
    }
    report
}
