//! Schedule fuzzing with fault injection, differentially checked against
//! the model.
//!
//! [`fuzz_run`] drives a single-threaded, fully seeded random workload
//! against a real [`TxManager`]: a mix of begins, nested children, reads,
//! adds, commits and aborts, with a [`SeededFaults`] injector killing
//! transactions at the runtime's yield points. Every operation is recorded
//! through `ntx-conform`'s [`ConformanceSession`], and the resulting trace
//! is replayed through the paper's R/W Locking automaton and the Theorem 34
//! serial-correctness checker. Whatever the faults did to the execution,
//! the surviving trace must still be a correct nested-transaction history —
//! that is the differential claim the fuzzer checks.
//!
//! Determinism: one thread, a [`StdRng`] op picker, a counter-keyed
//! injector and a zero wait budget (every blocked request fails immediately
//! instead of parking) make the whole run — including the runtime's own
//! [`TraceRecorder`] log — a pure function of [`FuzzConfig::seed`].

use crate::sync::Arc;
use std::path::PathBuf;
use std::time::Duration;

use ntx_conform::{
    check_trace, ConformanceReport, ConformanceSession, Trace, TracedTx, TranslateOptions,
};
use ntx_hb::HbReport;
use ntx_runtime::{
    FsyncPolicy, LockMode, RtConfig, RtEvent, StatsSnapshot, TraceRecorder, TxError, TxManager,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::fault::{CrashPlan, FaultPlan, SeededFaults};

/// Parameters of one fuzz run.
#[derive(Clone, Copy, Debug)]
pub struct FuzzConfig {
    /// Master seed: op sequence and fault decisions both derive from it.
    pub seed: u64,
    /// Number of driver steps (each step attempts one operation).
    pub steps: usize,
    /// Number of counter objects.
    pub objects: usize,
    /// Maximum concurrently open top-level transactions.
    pub top_level: usize,
    /// Maximum nesting depth (0 = top level only).
    pub max_depth: usize,
    /// Fault probabilities.
    pub plan: FaultPlan,
    /// Run the runtime in [`LockMode::Exclusive`] and tell the checker.
    pub exclusive: bool,
    /// Enable the footnote-8 optimisation on both sides.
    pub footnote8: bool,
    /// Mix lock-free snapshot reads into the workload (checked against
    /// the model as synthetic read-only transactions at the publication
    /// point — see `ntx-conform`'s translation).
    pub snapshot_ops: bool,
    /// Route a seeded half of all reads/adds through the async waiter
    /// path (`Tx::read_async`/`Tx::write_async` driven inline), so one
    /// seed exercises *both* waiter representations — parked-thread and
    /// callback — against the same fault schedule. Guarded by the flag so
    /// legacy seeds replay unchanged.
    pub async_ops: bool,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 0,
            steps: 80,
            objects: 3,
            top_level: 3,
            max_depth: 3,
            plan: FaultPlan::light(),
            exclusive: false,
            footnote8: false,
            snapshot_ops: false,
            async_ops: false,
        }
    }
}

/// Everything one fuzz run produced.
pub struct FuzzOutcome {
    /// The seed that produced this outcome.
    pub seed: u64,
    /// The conformance-session trace (model-facing events).
    pub trace: Trace,
    /// The differential verdict.
    pub report: ConformanceReport,
    /// The happens-before certification of the runtime's own event stream
    /// (`ntx-hb`): synchronization invariants checked on this execution in
    /// the same pass as the Theorem 34 checker.
    pub hb: HbReport,
    /// The runtime's own action log, rendered (byte-stable per seed).
    pub log: String,
    /// Injector consultations during the run.
    pub fault_calls: u64,
    /// Faults actually applied (from the runtime log).
    pub faults_applied: usize,
    /// Runtime counters at the end of the run.
    pub stats: StatsSnapshot,
}

impl FuzzOutcome {
    /// `true` when the trace conformed to the model *and* its
    /// synchronization was happens-before certified.
    pub fn ok(&self) -> bool {
        self.report.ok() && self.hb.ok()
    }
}

struct Node {
    t: TracedTx,
    parent: Option<usize>,
    depth: usize,
    finished: bool,
}

fn is_descendant(slots: &[Node], anc: usize, mut i: usize) -> bool {
    loop {
        if i == anc {
            return true;
        }
        match slots[i].parent {
            Some(p) => i = p,
            None => return false,
        }
    }
}

/// Mark `root` and every unfinished descendant finished (their runtime
/// state is already settled; this is driver bookkeeping only).
fn close_subtree(slots: &mut [Node], root: usize) {
    for i in root..slots.len() {
        if !slots[i].finished && is_descendant(slots, root, i) {
            slots[i].finished = true;
        }
    }
}

/// Record aborts for transactions doomed from outside the driver's own
/// calls (injected faults, crash-of-subtree): the *maximal* doomed nodes
/// get a session abort — their descendants are covered by the subtree
/// abort, exactly as the runtime treats them.
fn sweep_doomed(session: &ConformanceSession, slots: &mut [Node]) {
    for i in 0..slots.len() {
        if slots[i].finished || !slots[i].t.is_doomed() {
            continue;
        }
        let parent_doomed = slots[i]
            .parent
            .is_some_and(|p| !slots[p].finished && slots[p].t.is_doomed());
        if !parent_doomed {
            session.abort(&slots[i].t);
            close_subtree(slots, i);
        }
    }
}

fn open_top_count(slots: &[Node]) -> usize {
    slots
        .iter()
        .filter(|n| !n.finished && n.parent.is_none())
        .count()
}

fn has_open_child(slots: &[Node], i: usize) -> bool {
    slots.iter().any(|n| !n.finished && n.parent == Some(i))
}

fn pick<'a>(rng: &mut StdRng, alive: &'a [usize]) -> Option<&'a usize> {
    if alive.is_empty() {
        None
    } else {
        alive.get(rng.gen_range(0..alive.len()))
    }
}

/// Run one seeded fuzz scenario end to end and check it against the model.
pub fn fuzz_run(cfg: &FuzzConfig) -> FuzzOutcome {
    let recorder = Arc::new(TraceRecorder::new());
    let injector = Arc::new(SeededFaults::new(cfg.seed ^ 0xF417, cfg.plan));
    let rt = RtConfig {
        mode: if cfg.exclusive {
            LockMode::Exclusive
        } else {
            LockMode::MossRW
        },
        // Zero budget: a blocked request fails deterministically on its
        // first pass instead of parking on the condition variable.
        wait_timeout: Duration::ZERO,
        drop_read_lock_when_write_held: cfg.footnote8,
        fault: Some(injector.clone()),
        trace: Some(recorder.clone()),
        ..Default::default()
    };
    let mgr = TxManager::new(rt);
    let session = ConformanceSession::new(mgr.clone(), cfg.objects.max(1));
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut slots: Vec<Node> = Vec::new();

    for _ in 0..cfg.steps {
        let alive: Vec<usize> = (0..slots.len()).filter(|&i| !slots[i].finished).collect();
        let roll = rng.gen_range(0u32..100);
        match roll {
            // Open a new top-level transaction.
            _ if roll < 10 || alive.is_empty() => {
                if open_top_count(&slots) < cfg.top_level {
                    let t = session.begin();
                    slots.push(Node {
                        t,
                        parent: None,
                        depth: 0,
                        finished: false,
                    });
                }
            }
            // Open a child under a random live transaction.
            _ if roll < 20 => {
                let candidates: Vec<usize> = alive
                    .iter()
                    .copied()
                    .filter(|&i| slots[i].depth < cfg.max_depth)
                    .collect();
                if let Some(&i) = pick(&mut rng, &candidates) {
                    if let Ok(c) = session.child(&slots[i].t) {
                        let depth = slots[i].depth + 1;
                        slots.push(Node {
                            t: c,
                            parent: Some(i),
                            depth,
                            finished: false,
                        });
                    }
                }
            }
            // Lock-free snapshot read (no transaction, never blocks).
            // Guarded by the flag so legacy seeds replay unchanged.
            _ if cfg.snapshot_ops && (42..47).contains(&roll) => {
                let obj = rng.gen_range(0..cfg.objects.max(1));
                session.snapshot_read(obj);
            }
            // Read a random object (seeded coin: parked-thread or
            // callback waiter variant; the draw happens only when
            // async_ops is on, so legacy seeds replay unchanged).
            _ if roll < 52 => {
                if let Some(&i) = pick(&mut rng, &alive) {
                    let obj = rng.gen_range(0..cfg.objects.max(1));
                    let res = if cfg.async_ops && rng.gen_bool(0.5) {
                        session.read_async(&slots[i].t, obj)
                    } else {
                        session.read(&slots[i].t, obj)
                    };
                    match res {
                        Ok(_) | Err(TxError::Timeout) => {}
                        Err(TxError::Deadlock) => {
                            // Chosen as victim: give up the whole subtree.
                            session.abort(&slots[i].t);
                            close_subtree(&mut slots, i);
                        }
                        Err(_) => {} // doomed: the sweep below records it
                    }
                }
            }
            // Add to a random object (same seeded variant coin as reads).
            _ if roll < 82 => {
                if let Some(&i) = pick(&mut rng, &alive) {
                    let obj = rng.gen_range(0..cfg.objects.max(1));
                    let delta = rng.gen_range(1i64..10);
                    let res = if cfg.async_ops && rng.gen_bool(0.5) {
                        session.add_async(&slots[i].t, obj, delta)
                    } else {
                        session.add(&slots[i].t, obj, delta)
                    };
                    match res {
                        Ok(_) | Err(TxError::Timeout) => {}
                        Err(TxError::Deadlock) => {
                            session.abort(&slots[i].t);
                            close_subtree(&mut slots, i);
                        }
                        Err(_) => {}
                    }
                }
            }
            // Commit a transaction with no open children.
            _ if roll < 93 => {
                let candidates: Vec<usize> = alive
                    .iter()
                    .copied()
                    .filter(|&i| !has_open_child(&slots, i))
                    .collect();
                if let Some(&i) = pick(&mut rng, &candidates) {
                    match session.commit(&slots[i].t) {
                        Ok(()) => slots[i].finished = true,
                        Err(_) => {
                            // Commit-time fault or external doom: the
                            // runtime aborted the subtree; record it.
                            session.abort(&slots[i].t);
                            close_subtree(&mut slots, i);
                        }
                    }
                }
            }
            // Abort a random transaction.
            _ => {
                if let Some(&i) = pick(&mut rng, &alive) {
                    session.abort(&slots[i].t);
                    close_subtree(&mut slots, i);
                }
            }
        }
        sweep_doomed(&session, &mut slots);
    }

    // Close-out: children before parents (creation order reversed), so no
    // commit can fail on live children.
    sweep_doomed(&session, &mut slots);
    for i in (0..slots.len()).rev() {
        if slots[i].finished {
            continue;
        }
        match session.commit(&slots[i].t) {
            Ok(()) => slots[i].finished = true,
            Err(_) => {
                session.abort(&slots[i].t);
                close_subtree(&mut slots, i);
            }
        }
    }

    let fault_calls = injector.calls();
    let stats = mgr.stats();
    let faults_applied = recorder
        .events()
        .iter()
        .filter(|e| matches!(e, RtEvent::Fault { .. }))
        .count();
    let log = recorder.render();
    let hb = ntx_hb::certify(&recorder.stamped_events());
    let trace = session.finish();
    let report = check_trace(
        &trace,
        TranslateOptions {
            exclusive: cfg.exclusive,
            footnote8: cfg.footnote8,
        },
    );
    FuzzOutcome {
        seed: cfg.seed,
        trace,
        report,
        hb,
        log,
        fault_calls,
        faults_applied,
        stats,
    }
}

// ---------------------------------------------------------------------------
// Kill-and-recover fuzzing
// ---------------------------------------------------------------------------

/// Parameters of one kill-and-recover fuzz run ([`fuzz_crash_run`]).
#[derive(Clone, Debug)]
pub struct CrashFuzzConfig {
    /// Master seed (ops, fault draws, crash draws, torn-tail length).
    pub seed: u64,
    /// Driver steps before a clean shutdown (a crash usually cuts this
    /// short).
    pub steps: usize,
    /// Number of durable counter objects.
    pub objects: usize,
    /// Maximum concurrently open top-level transactions.
    pub top_level: usize,
    /// Maximum nesting depth.
    pub max_depth: usize,
    /// Ordinary fault probabilities (aborts, timeouts, victims).
    pub plan: FaultPlan,
    /// Process-kill probabilities at the WAL yield points.
    pub crash: CrashPlan,
    /// Directory for the log segments. `wal-*.log` files in it are wiped
    /// at the start of every run, so runs may share a directory
    /// sequentially (never concurrently).
    pub wal_dir: PathBuf,
    /// Fsync policy for the run.
    pub fsync: FsyncPolicy,
    /// Checkpoint cadence (0 = never), so crashes can land mid-checkpoint.
    pub checkpoint_every: u64,
    /// After the kill, chop the unsynced log tail at a seeded byte offset
    /// (usually mid-record) instead of letting every written byte survive.
    pub torn_tail: bool,
}

impl CrashFuzzConfig {
    /// A config that exercises every durability path: light ordinary
    /// faults, a kill chance at every WAL yield point, group commit and
    /// periodic checkpoints.
    pub fn new(seed: u64, wal_dir: PathBuf) -> CrashFuzzConfig {
        CrashFuzzConfig {
            seed,
            steps: 160,
            objects: 3,
            top_level: 3,
            max_depth: 2,
            plan: FaultPlan::light(),
            crash: CrashPlan::all(60),
            wal_dir,
            fsync: FsyncPolicy::Group(3, Duration::from_millis(50)),
            checkpoint_every: 6,
            torn_tail: true,
        }
    }
}

/// Everything one kill-and-recover run produced.
pub struct CrashFuzzOutcome {
    /// The seed that produced this outcome.
    pub seed: u64,
    /// Whether the injector actually killed the process (a run may finish
    /// all its steps without drawing a crash — still checked end to end).
    pub crashed: bool,
    /// Commit clock of the pre-crash manager after winding down.
    pub crash_clock: u64,
    /// Highest commit timestamp the WAL had promised durable pre-crash.
    pub durable_ts: u64,
    /// Commit clock the recovered manager rebuilt to.
    pub recovered_ts: u64,
    /// Committed write sets the recovery pass redid.
    pub redone: u64,
    /// Differential verdict of the surviving pre-crash trace against the
    /// paper's automaton.
    pub report: ConformanceReport,
    /// Happens-before certification of the pre-crash event stream: crash
    /// seeds get the same synchronization audit as ordinary fuzz seeds.
    pub hb: HbReport,
    /// The pre-crash runtime's rendered action log (byte-stable per seed).
    pub log: String,
    /// Every violated durability invariant (empty on success).
    pub failures: Vec<String>,
}

impl CrashFuzzOutcome {
    /// `true` when every durability invariant held, the pre-crash trace
    /// conformed to the model, *and* its synchronization was HB-certified.
    pub fn ok(&self) -> bool {
        self.failures.is_empty() && self.report.ok() && self.hb.ok()
    }
}

/// Run one seeded kill-and-recover scenario end to end.
///
/// The run drives a random durable workload until the injector kills the
/// process at a WAL yield point (or the step budget ends), simulates the
/// power cut ([`TxManager::wal_crash_teardown`]), reopens the log in a
/// fresh manager, recovers, and checks:
///
/// 1. **Durable floor / volatile ceiling** — `durable_ts <= recovered_ts
///    <= crash_clock`: everything fsynced survives, nothing that never
///    committed appears.
/// 2. **Prefix value equality** — every object's recovered committed value
///    equals the value the pre-crash version history held at
///    `recovered_ts`: recovery lands exactly *on* the pre-crash timeline,
///    never beside it.
/// 3. **No resurrection** — every redone transaction committed pre-crash,
///    and none of them aborted.
/// 4. **Recovery is one-shot** — a second `recover()` on the same manager
///    is rejected.
/// 5. **Model conformance** — the surviving pre-crash trace still passes
///    the R/W Locking automaton and the Theorem 34 checker.
pub fn fuzz_crash_run(cfg: &CrashFuzzConfig) -> CrashFuzzOutcome {
    let mut failures: Vec<String> = Vec::new();

    // Fresh log directory (wipe segments from a previous run of this dir).
    if let Err(e) = std::fs::create_dir_all(&cfg.wal_dir) {
        failures.push(format!("cannot create {}: {e}", cfg.wal_dir.display()));
    }
    if let Ok(entries) = std::fs::read_dir(&cfg.wal_dir) {
        for ent in entries.flatten() {
            let name = ent.file_name();
            let name = name.to_string_lossy();
            if name.starts_with("wal-") && name.ends_with(".log") {
                let _ = std::fs::remove_file(ent.path());
            }
        }
    }

    let recorder = Arc::new(TraceRecorder::new());
    let injector = Arc::new(SeededFaults::with_crash(
        cfg.seed ^ 0xF417,
        cfg.plan,
        cfg.crash,
    ));
    let rt = RtConfig {
        wait_timeout: Duration::ZERO,
        fault: Some(injector.clone()),
        trace: Some(recorder.clone()),
        wal_dir: Some(cfg.wal_dir.clone()),
        fsync_policy: cfg.fsync,
        checkpoint_every: cfg.checkpoint_every,
        ..Default::default()
    };
    let mgr = TxManager::new(rt);
    let session = ConformanceSession::new_durable(mgr.clone(), cfg.objects.max(1));
    // Pin a snapshot at ts 0 for the whole run: GC cannot reclaim any
    // version, so the full pre-crash history is available for the prefix
    // value check no matter where the crash lands.
    let pin = mgr.snapshot();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut slots: Vec<Node> = Vec::new();
    let mut committed_ok: Vec<bool> = Vec::new();

    for _ in 0..cfg.steps {
        let alive: Vec<usize> = (0..slots.len()).filter(|&i| !slots[i].finished).collect();
        let roll = rng.gen_range(0u32..100);
        match roll {
            _ if roll < 12 || alive.is_empty() => {
                if open_top_count(&slots) < cfg.top_level {
                    let t = session.begin();
                    slots.push(Node {
                        t,
                        parent: None,
                        depth: 0,
                        finished: false,
                    });
                    committed_ok.push(false);
                }
            }
            _ if roll < 22 => {
                let candidates: Vec<usize> = alive
                    .iter()
                    .copied()
                    .filter(|&i| slots[i].depth < cfg.max_depth)
                    .collect();
                if let Some(&i) = pick(&mut rng, &candidates) {
                    if let Ok(c) = session.child(&slots[i].t) {
                        let depth = slots[i].depth + 1;
                        slots.push(Node {
                            t: c,
                            parent: Some(i),
                            depth,
                            finished: false,
                        });
                        committed_ok.push(false);
                    }
                }
            }
            _ if roll < 50 => {
                if let Some(&i) = pick(&mut rng, &alive) {
                    let obj = rng.gen_range(0..cfg.objects.max(1));
                    match session.read(&slots[i].t, obj) {
                        Ok(_) | Err(TxError::Timeout) => {}
                        Err(TxError::Deadlock) => {
                            session.abort(&slots[i].t);
                            close_subtree(&mut slots, i);
                        }
                        Err(_) => {}
                    }
                }
            }
            _ if roll < 82 => {
                if let Some(&i) = pick(&mut rng, &alive) {
                    let obj = rng.gen_range(0..cfg.objects.max(1));
                    let delta = rng.gen_range(1i64..10);
                    match session.add(&slots[i].t, obj, delta) {
                        Ok(_) | Err(TxError::Timeout) => {}
                        Err(TxError::Deadlock) => {
                            session.abort(&slots[i].t);
                            close_subtree(&mut slots, i);
                        }
                        Err(_) => {}
                    }
                }
            }
            _ if roll < 94 => {
                let candidates: Vec<usize> = alive
                    .iter()
                    .copied()
                    .filter(|&i| !has_open_child(&slots, i))
                    .collect();
                if let Some(&i) = pick(&mut rng, &candidates) {
                    match session.commit(&slots[i].t) {
                        Ok(()) => {
                            slots[i].finished = true;
                            committed_ok[i] = true;
                        }
                        Err(_) => {
                            session.abort(&slots[i].t);
                            close_subtree(&mut slots, i);
                        }
                    }
                }
            }
            _ => {
                if let Some(&i) = pick(&mut rng, &alive) {
                    session.abort(&slots[i].t);
                    close_subtree(&mut slots, i);
                }
            }
        }
        sweep_doomed(&session, &mut slots);
        if mgr.wal_frozen() {
            // The simulated process is dead: stop issuing work. The open
            // transactions below are wound down commit-or-abort so the
            // *trace* is well formed; none of it can reach the dead log.
            break;
        }
    }

    sweep_doomed(&session, &mut slots);
    for i in (0..slots.len()).rev() {
        if slots[i].finished {
            continue;
        }
        match session.commit(&slots[i].t) {
            Ok(()) => {
                slots[i].finished = true;
                committed_ok[i] = true;
            }
            Err(_) => {
                session.abort(&slots[i].t);
                close_subtree(&mut slots, i);
            }
        }
    }

    // Pre-crash ground truth.
    let crashed = mgr.wal_frozen();
    let crash_clock = mgr.commit_clock();
    let durable_ts = mgr.wal_durable_ts();
    let mut committed_tops: Vec<u64> = Vec::new();
    let mut aborted_tops: Vec<u64> = Vec::new();
    for (i, n) in slots.iter().enumerate() {
        if n.parent.is_none() {
            if committed_ok[i] {
                committed_tops.push(n.t.runtime_id());
            } else {
                aborted_tops.push(n.t.runtime_id());
            }
        }
    }
    let histories: Vec<Vec<(u64, i64)>> = (0..cfg.objects.max(1))
        .map(|i| mgr.version_history(&session.object(i)))
        .collect();

    // Power cut: freeze the log and maybe tear the unsynced tail at a
    // seeded (usually mid-record) byte offset.
    let keep = if cfg.torn_tail {
        rng.gen_range(0..=mgr.wal_unsynced_bytes())
    } else {
        u64::MAX
    };
    if let Err(e) = mgr.wal_crash_teardown(keep) {
        failures.push(format!("crash teardown failed: {e}"));
    }

    let log = recorder.render();
    let hb = ntx_hb::certify(&recorder.stamped_events());
    let trace = session.finish();
    let report = check_trace(
        &trace,
        TranslateOptions {
            exclusive: false,
            footnote8: false,
        },
    );
    drop(pin);
    drop(mgr);

    // Reopen from the log in a fresh manager, mirroring the registration
    // order, and recover.
    let mgr2 = TxManager::new(RtConfig {
        wal_dir: Some(cfg.wal_dir.clone()),
        fsync_policy: cfg.fsync,
        checkpoint_every: cfg.checkpoint_every,
        ..Default::default()
    });
    let objs2: Vec<_> = (0..cfg.objects.max(1))
        .map(|i| mgr2.register_durable(format!("c{i}"), 0i64))
        .collect();
    let (recovered_ts, redone) = match mgr2.recover() {
        Err(e) => {
            failures.push(format!("recovery failed: {e}"));
            (0, 0)
        }
        Ok(rec) => {
            // 1. Durable floor, volatile ceiling.
            if rec.recovered_ts < durable_ts {
                failures.push(format!(
                    "recovered_ts {} lost durable commits (durable_ts {durable_ts})",
                    rec.recovered_ts
                ));
            }
            if rec.recovered_ts > crash_clock {
                failures.push(format!(
                    "recovered_ts {} beyond the pre-crash clock {crash_clock}",
                    rec.recovered_ts
                ));
            }
            // 2. Recovered state equals the pre-crash committed value at
            //    the recovered timestamp, object by object.
            for (i, hist) in histories.iter().enumerate() {
                let expect = hist
                    .iter()
                    .rev()
                    .find(|(ts, _)| *ts <= rec.recovered_ts)
                    .map_or(0, |(_, v)| *v);
                let got = mgr2.read_committed(&objs2[i], |v| *v);
                if got != expect {
                    failures.push(format!(
                        "object {i}: recovered value {got} != pre-crash value {expect} \
                         at ts {}",
                        rec.recovered_ts
                    ));
                }
            }
            // 3. No resurrection: redone ⊆ committed, redone ∩ aborted = ∅.
            for top in &rec.redone_tops {
                if !committed_tops.contains(top) {
                    failures.push(format!("redone top {top} never committed pre-crash"));
                }
                if aborted_tops.contains(top) {
                    failures.push(format!("redone top {top} aborted pre-crash"));
                }
            }
            // 4. Recovery is one-shot (only observable once it replayed
            //    history; an empty log leaves the manager fresh).
            if rec.recovered_ts > 0 && mgr2.recover().is_ok() {
                failures.push("second recover() on a recovered manager succeeded".into());
            }
            (rec.recovered_ts, rec.commits_redone)
        }
    };

    CrashFuzzOutcome {
        seed: cfg.seed,
        crashed,
        crash_clock,
        durable_ts,
        recovered_ts,
        redone,
        report,
        hb,
        log,
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_run_conforms_and_is_deterministic() {
        let cfg = FuzzConfig {
            seed: 1,
            ..Default::default()
        };
        let a = fuzz_run(&cfg);
        let b = fuzz_run(&cfg);
        assert!(a.ok(), "{:?}", a.report);
        assert_eq!(a.log, b.log, "same seed must replay byte-identically");
        assert_eq!(a.fault_calls, b.fault_calls);
    }

    #[test]
    fn no_faults_when_plan_is_none() {
        let cfg = FuzzConfig {
            seed: 5,
            plan: FaultPlan::none(),
            ..Default::default()
        };
        let out = fuzz_run(&cfg);
        assert!(out.ok(), "{:?}", out.report);
        assert_eq!(out.faults_applied, 0);
        assert!(out.fault_calls > 0, "injector must still be consulted");
    }

    #[test]
    fn heavy_faults_still_conform() {
        for seed in 0..8 {
            let cfg = FuzzConfig {
                seed,
                plan: FaultPlan::heavy(),
                ..Default::default()
            };
            let out = fuzz_run(&cfg);
            assert!(out.ok(), "seed {seed}: {:?}", out.report);
        }
    }

    #[test]
    fn snapshot_ops_conform_and_replay_deterministically() {
        let cfg = FuzzConfig {
            seed: 2,
            snapshot_ops: true,
            ..Default::default()
        };
        let a = fuzz_run(&cfg);
        let b = fuzz_run(&cfg);
        assert!(a.ok(), "{:?}", a.report);
        assert_eq!(a.log, b.log, "same seed must replay byte-identically");
        assert!(
            a.log.contains("SNAPREAD"),
            "no snapshot reads exercised:\n{}",
            a.log
        );
        assert!(a.stats.snapshot_reads > 0);
    }

    #[test]
    fn snapshot_ops_with_heavy_faults_conform() {
        for seed in 0..8 {
            let cfg = FuzzConfig {
                seed,
                snapshot_ops: true,
                plan: FaultPlan::heavy(),
                ..Default::default()
            };
            let out = fuzz_run(&cfg);
            assert!(out.ok(), "seed {seed}: {:?}", out.report);
        }
    }

    #[test]
    fn async_ops_conform_and_replay_deterministically() {
        let cfg = FuzzConfig {
            seed: 3,
            async_ops: true,
            ..Default::default()
        };
        let a = fuzz_run(&cfg);
        let b = fuzz_run(&cfg);
        assert!(a.ok(), "{:?}", a.report);
        assert_eq!(a.log, b.log, "same seed must replay byte-identically");
        assert_eq!(a.fault_calls, b.fault_calls);
    }

    #[test]
    fn async_ops_with_heavy_faults_conform() {
        // Both waiter representations face the same counter-keyed fault
        // schedule; whatever the injector kills, the surviving trace must
        // still conform.
        for seed in 0..8 {
            let cfg = FuzzConfig {
                seed,
                async_ops: true,
                snapshot_ops: true,
                plan: FaultPlan::heavy(),
                ..Default::default()
            };
            let out = fuzz_run(&cfg);
            assert!(out.ok(), "seed {seed}: {:?}", out.report);
        }
    }

    #[test]
    fn async_ops_flag_off_preserves_legacy_seeds() {
        // The variant coin is drawn only when the flag is on: a flag-off
        // run must be byte-identical to the historical default.
        let legacy = fuzz_run(&FuzzConfig {
            seed: 1,
            ..Default::default()
        });
        let explicit_off = fuzz_run(&FuzzConfig {
            seed: 1,
            async_ops: false,
            ..Default::default()
        });
        assert_eq!(legacy.log, explicit_off.log);
    }

    #[test]
    fn exclusive_mode_runs_conform() {
        for seed in 0..4 {
            let cfg = FuzzConfig {
                seed,
                exclusive: true,
                ..Default::default()
            };
            let out = fuzz_run(&cfg);
            assert!(out.ok(), "seed {seed}: {:?}", out.report);
        }
    }

    fn crash_dir(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ntx-crashfuzz-{}-{name}", std::process::id()))
    }

    #[test]
    fn crash_runs_recover_correctly_across_seeds() {
        let dir = crash_dir("seeds");
        let mut crashes = 0;
        for seed in 0..24 {
            let out = fuzz_crash_run(&CrashFuzzConfig::new(seed, dir.clone()));
            assert!(
                out.ok(),
                "seed {seed}: failures {:?}\nreport {:?}",
                out.failures,
                out.report
            );
            crashes += u32::from(out.crashed);
        }
        assert!(crashes > 0, "no seed ever drew a crash");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_crash_point_recovers_alone() {
        use ntx_runtime::FaultPoint;
        for (name, point) in [
            ("pre", FaultPoint::WalPreAppend),
            ("mid", FaultPoint::WalMidCommit),
            ("post", FaultPoint::WalPostAppend),
            ("ckpt", FaultPoint::WalCheckpoint),
        ] {
            let dir = crash_dir(name);
            let mut crashes = 0;
            for seed in 0..12 {
                let cfg = CrashFuzzConfig {
                    crash: CrashPlan::at(point, 200),
                    ..CrashFuzzConfig::new(seed, dir.clone())
                };
                let out = fuzz_crash_run(&cfg);
                assert!(out.ok(), "{name} seed {seed}: failures {:?}", out.failures);
                crashes += u32::from(out.crashed);
            }
            assert!(crashes > 0, "{name}: no seed ever crashed");
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn crash_run_is_deterministic_per_seed() {
        let dir = crash_dir("det");
        let cfg = CrashFuzzConfig {
            // `Always` keeps fsync timing out of the decision path, so the
            // whole run (including the runtime log) replays byte for byte.
            fsync: FsyncPolicy::Always,
            ..CrashFuzzConfig::new(9, dir.clone())
        };
        let a = fuzz_crash_run(&cfg);
        let b = fuzz_crash_run(&cfg);
        assert!(a.ok(), "failures {:?}", a.failures);
        assert_eq!(a.log, b.log, "same seed must replay byte-identically");
        assert_eq!(a.crashed, b.crashed);
        assert_eq!(a.recovered_ts, b.recovered_ts);
        assert_eq!(a.redone, b.redone);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn clean_shutdown_recovers_everything() {
        let dir = crash_dir("clean");
        let cfg = CrashFuzzConfig {
            crash: CrashPlan::none(),
            torn_tail: false,
            fsync: FsyncPolicy::Always,
            ..CrashFuzzConfig::new(3, dir.clone())
        };
        let out = fuzz_crash_run(&cfg);
        assert!(out.ok(), "failures {:?}", out.failures);
        assert!(!out.crashed);
        assert_eq!(
            out.recovered_ts, out.crash_clock,
            "no crash: recovery must rebuild the full history"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
