//! Schedule fuzzing with fault injection, differentially checked against
//! the model.
//!
//! [`fuzz_run`] drives a single-threaded, fully seeded random workload
//! against a real [`TxManager`]: a mix of begins, nested children, reads,
//! adds, commits and aborts, with a [`SeededFaults`] injector killing
//! transactions at the runtime's yield points. Every operation is recorded
//! through `ntx-conform`'s [`ConformanceSession`], and the resulting trace
//! is replayed through the paper's R/W Locking automaton and the Theorem 34
//! serial-correctness checker. Whatever the faults did to the execution,
//! the surviving trace must still be a correct nested-transaction history —
//! that is the differential claim the fuzzer checks.
//!
//! Determinism: one thread, a [`StdRng`] op picker, a counter-keyed
//! injector and a zero wait budget (every blocked request fails immediately
//! instead of parking) make the whole run — including the runtime's own
//! [`TraceRecorder`] log — a pure function of [`FuzzConfig::seed`].

use std::sync::Arc;
use std::time::Duration;

use ntx_conform::{
    check_trace, ConformanceReport, ConformanceSession, Trace, TracedTx, TranslateOptions,
};
use ntx_runtime::{LockMode, RtConfig, RtEvent, StatsSnapshot, TraceRecorder, TxError, TxManager};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::fault::{FaultPlan, SeededFaults};

/// Parameters of one fuzz run.
#[derive(Clone, Copy, Debug)]
pub struct FuzzConfig {
    /// Master seed: op sequence and fault decisions both derive from it.
    pub seed: u64,
    /// Number of driver steps (each step attempts one operation).
    pub steps: usize,
    /// Number of counter objects.
    pub objects: usize,
    /// Maximum concurrently open top-level transactions.
    pub top_level: usize,
    /// Maximum nesting depth (0 = top level only).
    pub max_depth: usize,
    /// Fault probabilities.
    pub plan: FaultPlan,
    /// Run the runtime in [`LockMode::Exclusive`] and tell the checker.
    pub exclusive: bool,
    /// Enable the footnote-8 optimisation on both sides.
    pub footnote8: bool,
    /// Mix lock-free snapshot reads into the workload (checked against
    /// the model as synthetic read-only transactions at the publication
    /// point — see `ntx-conform`'s translation).
    pub snapshot_ops: bool,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 0,
            steps: 80,
            objects: 3,
            top_level: 3,
            max_depth: 3,
            plan: FaultPlan::light(),
            exclusive: false,
            footnote8: false,
            snapshot_ops: false,
        }
    }
}

/// Everything one fuzz run produced.
pub struct FuzzOutcome {
    /// The seed that produced this outcome.
    pub seed: u64,
    /// The conformance-session trace (model-facing events).
    pub trace: Trace,
    /// The differential verdict.
    pub report: ConformanceReport,
    /// The runtime's own action log, rendered (byte-stable per seed).
    pub log: String,
    /// Injector consultations during the run.
    pub fault_calls: u64,
    /// Faults actually applied (from the runtime log).
    pub faults_applied: usize,
    /// Runtime counters at the end of the run.
    pub stats: StatsSnapshot,
}

impl FuzzOutcome {
    /// `true` when the trace conformed to the model.
    pub fn ok(&self) -> bool {
        self.report.ok()
    }
}

struct Node {
    t: TracedTx,
    parent: Option<usize>,
    depth: usize,
    finished: bool,
}

fn is_descendant(slots: &[Node], anc: usize, mut i: usize) -> bool {
    loop {
        if i == anc {
            return true;
        }
        match slots[i].parent {
            Some(p) => i = p,
            None => return false,
        }
    }
}

/// Mark `root` and every unfinished descendant finished (their runtime
/// state is already settled; this is driver bookkeeping only).
fn close_subtree(slots: &mut [Node], root: usize) {
    for i in root..slots.len() {
        if !slots[i].finished && is_descendant(slots, root, i) {
            slots[i].finished = true;
        }
    }
}

/// Record aborts for transactions doomed from outside the driver's own
/// calls (injected faults, crash-of-subtree): the *maximal* doomed nodes
/// get a session abort — their descendants are covered by the subtree
/// abort, exactly as the runtime treats them.
fn sweep_doomed(session: &ConformanceSession, slots: &mut [Node]) {
    for i in 0..slots.len() {
        if slots[i].finished || !slots[i].t.is_doomed() {
            continue;
        }
        let parent_doomed = slots[i]
            .parent
            .is_some_and(|p| !slots[p].finished && slots[p].t.is_doomed());
        if !parent_doomed {
            session.abort(&slots[i].t);
            close_subtree(slots, i);
        }
    }
}

fn open_top_count(slots: &[Node]) -> usize {
    slots
        .iter()
        .filter(|n| !n.finished && n.parent.is_none())
        .count()
}

fn has_open_child(slots: &[Node], i: usize) -> bool {
    slots.iter().any(|n| !n.finished && n.parent == Some(i))
}

fn pick<'a>(rng: &mut StdRng, alive: &'a [usize]) -> Option<&'a usize> {
    if alive.is_empty() {
        None
    } else {
        alive.get(rng.gen_range(0..alive.len()))
    }
}

/// Run one seeded fuzz scenario end to end and check it against the model.
pub fn fuzz_run(cfg: &FuzzConfig) -> FuzzOutcome {
    let recorder = Arc::new(TraceRecorder::new());
    let injector = Arc::new(SeededFaults::new(cfg.seed ^ 0xF417, cfg.plan));
    let rt = RtConfig {
        mode: if cfg.exclusive {
            LockMode::Exclusive
        } else {
            LockMode::MossRW
        },
        // Zero budget: a blocked request fails deterministically on its
        // first pass instead of parking on the condition variable.
        wait_timeout: Duration::ZERO,
        drop_read_lock_when_write_held: cfg.footnote8,
        fault: Some(injector.clone()),
        trace: Some(recorder.clone()),
        ..Default::default()
    };
    let mgr = TxManager::new(rt);
    let session = ConformanceSession::new(mgr.clone(), cfg.objects.max(1));
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut slots: Vec<Node> = Vec::new();

    for _ in 0..cfg.steps {
        let alive: Vec<usize> = (0..slots.len()).filter(|&i| !slots[i].finished).collect();
        let roll = rng.gen_range(0u32..100);
        match roll {
            // Open a new top-level transaction.
            _ if roll < 10 || alive.is_empty() => {
                if open_top_count(&slots) < cfg.top_level {
                    let t = session.begin();
                    slots.push(Node {
                        t,
                        parent: None,
                        depth: 0,
                        finished: false,
                    });
                }
            }
            // Open a child under a random live transaction.
            _ if roll < 20 => {
                let candidates: Vec<usize> = alive
                    .iter()
                    .copied()
                    .filter(|&i| slots[i].depth < cfg.max_depth)
                    .collect();
                if let Some(&i) = pick(&mut rng, &candidates) {
                    if let Ok(c) = session.child(&slots[i].t) {
                        let depth = slots[i].depth + 1;
                        slots.push(Node {
                            t: c,
                            parent: Some(i),
                            depth,
                            finished: false,
                        });
                    }
                }
            }
            // Lock-free snapshot read (no transaction, never blocks).
            // Guarded by the flag so legacy seeds replay unchanged.
            _ if cfg.snapshot_ops && (42..47).contains(&roll) => {
                let obj = rng.gen_range(0..cfg.objects.max(1));
                session.snapshot_read(obj);
            }
            // Read a random object.
            _ if roll < 52 => {
                if let Some(&i) = pick(&mut rng, &alive) {
                    let obj = rng.gen_range(0..cfg.objects.max(1));
                    match session.read(&slots[i].t, obj) {
                        Ok(_) | Err(TxError::Timeout) => {}
                        Err(TxError::Deadlock) => {
                            // Chosen as victim: give up the whole subtree.
                            session.abort(&slots[i].t);
                            close_subtree(&mut slots, i);
                        }
                        Err(_) => {} // doomed: the sweep below records it
                    }
                }
            }
            // Add to a random object.
            _ if roll < 82 => {
                if let Some(&i) = pick(&mut rng, &alive) {
                    let obj = rng.gen_range(0..cfg.objects.max(1));
                    let delta = rng.gen_range(1i64..10);
                    match session.add(&slots[i].t, obj, delta) {
                        Ok(_) | Err(TxError::Timeout) => {}
                        Err(TxError::Deadlock) => {
                            session.abort(&slots[i].t);
                            close_subtree(&mut slots, i);
                        }
                        Err(_) => {}
                    }
                }
            }
            // Commit a transaction with no open children.
            _ if roll < 93 => {
                let candidates: Vec<usize> = alive
                    .iter()
                    .copied()
                    .filter(|&i| !has_open_child(&slots, i))
                    .collect();
                if let Some(&i) = pick(&mut rng, &candidates) {
                    match session.commit(&slots[i].t) {
                        Ok(()) => slots[i].finished = true,
                        Err(_) => {
                            // Commit-time fault or external doom: the
                            // runtime aborted the subtree; record it.
                            session.abort(&slots[i].t);
                            close_subtree(&mut slots, i);
                        }
                    }
                }
            }
            // Abort a random transaction.
            _ => {
                if let Some(&i) = pick(&mut rng, &alive) {
                    session.abort(&slots[i].t);
                    close_subtree(&mut slots, i);
                }
            }
        }
        sweep_doomed(&session, &mut slots);
    }

    // Close-out: children before parents (creation order reversed), so no
    // commit can fail on live children.
    sweep_doomed(&session, &mut slots);
    for i in (0..slots.len()).rev() {
        if slots[i].finished {
            continue;
        }
        match session.commit(&slots[i].t) {
            Ok(()) => slots[i].finished = true,
            Err(_) => {
                session.abort(&slots[i].t);
                close_subtree(&mut slots, i);
            }
        }
    }

    let fault_calls = injector.calls();
    let stats = mgr.stats();
    let faults_applied = recorder
        .events()
        .iter()
        .filter(|e| matches!(e, RtEvent::Fault { .. }))
        .count();
    let log = recorder.render();
    let trace = session.finish();
    let report = check_trace(
        &trace,
        TranslateOptions {
            exclusive: cfg.exclusive,
            footnote8: cfg.footnote8,
        },
    );
    FuzzOutcome {
        seed: cfg.seed,
        trace,
        report,
        log,
        fault_calls,
        faults_applied,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_run_conforms_and_is_deterministic() {
        let cfg = FuzzConfig {
            seed: 1,
            ..Default::default()
        };
        let a = fuzz_run(&cfg);
        let b = fuzz_run(&cfg);
        assert!(a.ok(), "{:?}", a.report);
        assert_eq!(a.log, b.log, "same seed must replay byte-identically");
        assert_eq!(a.fault_calls, b.fault_calls);
    }

    #[test]
    fn no_faults_when_plan_is_none() {
        let cfg = FuzzConfig {
            seed: 5,
            plan: FaultPlan::none(),
            ..Default::default()
        };
        let out = fuzz_run(&cfg);
        assert!(out.ok(), "{:?}", out.report);
        assert_eq!(out.faults_applied, 0);
        assert!(out.fault_calls > 0, "injector must still be consulted");
    }

    #[test]
    fn heavy_faults_still_conform() {
        for seed in 0..8 {
            let cfg = FuzzConfig {
                seed,
                plan: FaultPlan::heavy(),
                ..Default::default()
            };
            let out = fuzz_run(&cfg);
            assert!(out.ok(), "seed {seed}: {:?}", out.report);
        }
    }

    #[test]
    fn snapshot_ops_conform_and_replay_deterministically() {
        let cfg = FuzzConfig {
            seed: 2,
            snapshot_ops: true,
            ..Default::default()
        };
        let a = fuzz_run(&cfg);
        let b = fuzz_run(&cfg);
        assert!(a.ok(), "{:?}", a.report);
        assert_eq!(a.log, b.log, "same seed must replay byte-identically");
        assert!(
            a.log.contains("SNAPREAD"),
            "no snapshot reads exercised:\n{}",
            a.log
        );
        assert!(a.stats.snapshot_reads > 0);
    }

    #[test]
    fn snapshot_ops_with_heavy_faults_conform() {
        for seed in 0..8 {
            let cfg = FuzzConfig {
                seed,
                snapshot_ops: true,
                plan: FaultPlan::heavy(),
                ..Default::default()
            };
            let out = fuzz_run(&cfg);
            assert!(out.ok(), "seed {seed}: {:?}", out.report);
        }
    }

    #[test]
    fn exclusive_mode_runs_conform() {
        for seed in 0..4 {
            let cfg = FuzzConfig {
                seed,
                exclusive: true,
                ..Default::default()
            };
            let out = fuzz_run(&cfg);
            assert!(out.ok(), "seed {seed}: {:?}", out.report);
        }
    }
}
