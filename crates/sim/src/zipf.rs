//! Zipf-distributed sampling for skewed object popularity.

use rand::Rng;

/// A Zipf(θ) sampler over `{0, 1, …, n-1}`.
///
/// `θ = 0` is the uniform distribution; larger θ concentrates probability
/// on low ranks (rank `k` has weight `1 / (k+1)^θ`). θ around 0.8–1.2 is
/// the usual "hot spot" regime in transaction-processing workloads.
///
/// Implemented with a precomputed CDF and binary search — exact, O(log n)
/// per sample, no external distribution crates needed.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler over `n` ranks with skew `theta`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `theta` is negative or non-finite.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipf over an empty domain");
        assert!(theta >= 0.0 && theta.is_finite(), "invalid skew {theta}");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 0..n {
            total += 1.0 / ((k + 1) as f64).powf(theta);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against floating-point shortfall at the top.
        *cdf.last_mut().expect("n > 0") = 1.0;
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// `true` when the domain has a single element.
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draw a rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("finite cdf"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn histogram(z: &Zipf, samples: usize) -> Vec<usize> {
        let mut rng = StdRng::seed_from_u64(42);
        let mut h = vec![0usize; z.len()];
        for _ in 0..samples {
            h[z.sample(&mut rng)] += 1;
        }
        h
    }

    #[test]
    fn theta_zero_is_roughly_uniform() {
        let z = Zipf::new(8, 0.0);
        let h = histogram(&z, 80_000);
        for &count in &h {
            assert!((8_000..12_000).contains(&count), "non-uniform: {h:?}");
        }
    }

    #[test]
    fn high_theta_concentrates_on_rank_zero() {
        let z = Zipf::new(16, 1.2);
        let h = histogram(&z, 50_000);
        assert!(h[0] > h[8] * 4, "no hotspot: {h:?}");
        // Monotone non-increasing in expectation; check loose ordering of
        // first vs last.
        assert!(h[0] > *h.last().unwrap());
    }

    #[test]
    fn all_ranks_reachable() {
        let z = Zipf::new(4, 1.0);
        let h = histogram(&z, 10_000);
        assert!(h.iter().all(|&c| c > 0), "{h:?}");
    }

    #[test]
    fn single_rank_domain() {
        let z = Zipf::new(1, 0.9);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(z.sample(&mut rng), 0);
        assert_eq!(z.len(), 1);
    }

    #[test]
    #[should_panic(expected = "empty domain")]
    fn zero_domain_panics() {
        Zipf::new(0, 1.0);
    }
}
