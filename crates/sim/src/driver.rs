//! Seeded, policy-weighted execution drivers.
//!
//! Every automaton in the model is deterministic per action; all the
//! nondeterminism sits in *which enabled action fires next*. The drivers
//! here resolve it with a seeded RNG and a [`DrivePolicy`] that weights
//! action classes — most importantly how often the scheduler exercises its
//! right to spontaneously `ABORT` a live transaction (the model-level
//! fault-injection knob for the experiments).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ntx_automata::{Schedule, System};
use ntx_model::{Action, ObjectSemantics, SystemSpec};

/// Relative weights for choosing the next enabled action.
#[derive(Clone, Copy, Debug)]
pub struct DrivePolicy {
    /// Weight of `ABORT` actions relative to weight-1 ordinary actions.
    /// `0.0` disables spontaneous aborts entirely.
    pub abort_weight: f64,
    /// Weight of `INFORM_…` actions. Lower values delay lock inheritance
    /// and release, higher values make objects learn fates promptly.
    pub inform_weight: f64,
    /// Step budget per run.
    pub max_steps: usize,
}

impl Default for DrivePolicy {
    fn default() -> Self {
        DrivePolicy {
            abort_weight: 0.02,
            inform_weight: 1.0,
            max_steps: 100_000,
        }
    }
}

impl DrivePolicy {
    /// No spontaneous aborts; everything runs to commit.
    pub fn no_aborts() -> Self {
        DrivePolicy {
            abort_weight: 0.0,
            ..Default::default()
        }
    }

    /// Aborts as likely as any other action (heavy fault injection).
    pub fn chaos() -> Self {
        DrivePolicy {
            abort_weight: 1.0,
            ..Default::default()
        }
    }

    fn weight(&self, a: &Action) -> f64 {
        match a {
            Action::Abort(_) => self.abort_weight,
            Action::InformCommit(..) | Action::InformAbort(..) => self.inform_weight,
            _ => 1.0,
        }
    }
}

/// The result of one driven run.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// The schedule produced.
    pub schedule: Schedule<Action>,
    /// `true` if the system went quiescent before the step budget ran out.
    pub quiescent: bool,
}

/// Drive an arbitrary system with the policy until quiescence or budget.
pub fn run_system(mut sys: System<Action>, seed: u64, policy: &DrivePolicy) -> RunOutcome {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut steps = 0usize;
    loop {
        if steps >= policy.max_steps {
            return RunOutcome {
                schedule: sys.into_schedule(),
                quiescent: false,
            };
        }
        let enabled = sys.enabled_outputs();
        if enabled.is_empty() {
            return RunOutcome {
                schedule: sys.into_schedule(),
                quiescent: true,
            };
        }
        let idx = weighted_pick(&enabled, policy, &mut rng);
        sys.perform(&enabled[idx]);
        steps += 1;
    }
}

fn weighted_pick(enabled: &[Action], policy: &DrivePolicy, rng: &mut StdRng) -> usize {
    let total: f64 = enabled.iter().map(|a| policy.weight(a)).sum();
    if total <= 0.0 {
        // All enabled actions have zero weight (e.g. only ABORTs remain
        // with abort_weight 0): fall back to uniform so the run can end.
        return rng.gen_range(0..enabled.len());
    }
    let mut u = rng.gen_range(0.0..total);
    for (i, a) in enabled.iter().enumerate() {
        u -= policy.weight(a);
        if u <= 0.0 {
            return i;
        }
    }
    enabled.len() - 1
}

/// Drive the spec's R/W Locking system.
pub fn run_concurrent<S: ObjectSemantics>(
    spec: &SystemSpec<S>,
    seed: u64,
    policy: &DrivePolicy,
) -> RunOutcome {
    run_system(spec.concurrent_system(), seed, policy)
}

/// Drive the spec's serial system.
pub fn run_serial<S: ObjectSemantics>(
    spec: &SystemSpec<S>,
    seed: u64,
    policy: &DrivePolicy,
) -> RunOutcome {
    run_system(spec.serial_system(), seed, policy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{Workload, WorkloadConfig};
    use ntx_model::correctness::check_serial_correctness;
    use ntx_model::visibility::Fates;
    use ntx_model::wellformed::check_concurrent_sequence;

    fn workload() -> Workload {
        Workload::generate(&WorkloadConfig::default(), 17)
    }

    #[test]
    fn no_abort_policy_commits_everything() {
        // The no-abort lock model can wedge (crosswise read-lock holds with
        // no victim to kill), so "every top commits" is seed-dependent; the
        // seed-independent invariants are: no ABORT ever fires, every run
        // quiesces, and interleavings that avoid deadlock commit every top.
        let w = workload();
        let mut spec = w.spec.clone();
        spec.generic_config.allow_aborts = false;
        let mut fully_committed = 0usize;
        for seed in 0..10u64 {
            let out = run_concurrent(&spec, seed, &DrivePolicy::no_aborts());
            assert!(out.quiescent, "seed {seed}: run did not finish");
            assert!(
                !out.schedule.iter().any(|a| matches!(a, Action::Abort(_))),
                "seed {seed}: no-abort policy fired an ABORT"
            );
            let fates = Fates::scan(out.schedule.as_slice());
            if spec
                .tree
                .children(ntx_tree::TxTree::ROOT)
                .iter()
                .all(|t| fates.is_committed(*t))
            {
                fully_committed += 1;
            }
        }
        assert!(
            fully_committed > 0,
            "every interleaving deadlocked; driver never ran a workload to completion"
        );
    }

    #[test]
    fn chaos_policy_aborts_things() {
        let w = workload();
        let out = run_concurrent(&w.spec, 3, &DrivePolicy::chaos());
        let aborts = out
            .schedule
            .iter()
            .filter(|a| matches!(a, Action::Abort(_)))
            .count();
        assert!(aborts > 0, "chaos produced no aborts");
    }

    #[test]
    fn driven_schedules_are_well_formed_and_serially_correct() {
        let w = workload();
        for seed in 0..10 {
            let out = run_concurrent(&w.spec, seed, &DrivePolicy::default());
            check_concurrent_sequence(out.schedule.as_slice(), &w.spec.tree).unwrap();
            let report = check_serial_correctness(&w.spec, out.schedule.as_slice());
            assert!(report.ok(), "seed {seed}: {:?}", report.violations);
        }
    }

    #[test]
    fn serial_runs_quiesce() {
        let w = workload();
        let out = run_serial(&w.spec, 5, &DrivePolicy::no_aborts());
        assert!(out.quiescent);
        assert!(!out.schedule.is_empty());
    }

    #[test]
    fn same_seed_same_schedule() {
        let w = workload();
        let a = run_concurrent(&w.spec, 11, &DrivePolicy::default());
        let b = run_concurrent(&w.spec, 11, &DrivePolicy::default());
        assert_eq!(a.schedule.as_slice(), b.schedule.as_slice());
    }
}
