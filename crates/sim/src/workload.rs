//! Random workload (system) generation.
//!
//! A [`WorkloadConfig`] describes the *shape* of a nested-transaction
//! workload — how many top-level transactions, how deep and wide the
//! nesting, how many accesses per leaf transaction, the read/write mix and
//! the object-popularity skew — and [`Workload::generate`] turns it into a
//! concrete [`SystemSpec`] with a seeded RNG. The same seed always yields
//! the same system, so experiments are reproducible.

use crate::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ntx_model::transaction::TxProgram;
use ntx_model::{StdSemantics, SystemSpec};
use ntx_tree::{AccessKind, TxId, TxTree, TxTreeBuilder};

use crate::zipf::Zipf;

/// The family of object semantics used for every object of a workload.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SemanticsKind {
    /// Integer registers (read / overwrite).
    Registers,
    /// Counters (read / add).
    Counters,
    /// Bank accounts (balance / deposit / withdraw).
    Accounts,
    /// Integer sets (contains, size / insert, remove).
    Sets,
    /// FIFO queues (length, front / enqueue, dequeue).
    Queues,
}

/// Shape parameters of a generated workload.
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// Number of top-level transactions (children of `T₀`).
    pub top_level: usize,
    /// Nesting depth below the top level (0 = top-level transactions access
    /// data directly).
    pub depth: u32,
    /// Children per internal transaction at each nesting level.
    pub fanout: usize,
    /// Access leaves per deepest-level transaction.
    pub accesses_per_leaf: usize,
    /// Number of shared objects.
    pub objects: usize,
    /// Probability that an access is a read.
    pub read_fraction: f64,
    /// Zipf skew for object selection (0 = uniform).
    pub zipf_theta: f64,
    /// Object semantics.
    pub semantics: SemanticsKind,
    /// Whether internal transactions run their children sequentially
    /// (`false` = all at once, the concurrency-friendly default).
    pub sequential_children: bool,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            top_level: 3,
            depth: 1,
            fanout: 2,
            accesses_per_leaf: 2,
            objects: 4,
            read_fraction: 0.5,
            zipf_theta: 0.0,
            semantics: SemanticsKind::Registers,
            sequential_children: false,
        }
    }
}

/// A generated workload: the spec plus bookkeeping for experiments.
#[derive(Clone)]
pub struct Workload {
    /// The generated system.
    pub spec: SystemSpec<StdSemantics>,
    /// The seed it was generated from.
    pub seed: u64,
    /// Number of read accesses generated.
    pub reads: usize,
    /// Number of write accesses generated.
    pub writes: usize,
}

impl Workload {
    /// Generate the workload for `config` with the given `seed`.
    pub fn generate(config: &WorkloadConfig, seed: u64) -> Workload {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = TxTreeBuilder::new();
        let objects: Vec<_> = (0..config.objects.max(1))
            .map(|i| b.object(format!("obj{i}")))
            .collect();
        let zipf = Zipf::new(objects.len(), config.zipf_theta);
        let mut reads = 0usize;
        let mut writes = 0usize;

        // Recursive construction without recursion: (parent, level) queue.
        let mut frontier: Vec<(TxId, u32)> = Vec::new();
        for i in 0..config.top_level.max(1) {
            let t = b.internal(TxTree::ROOT, format!("t{i}"));
            frontier.push((t, 0));
        }
        while let Some((t, level)) = frontier.pop() {
            if level < config.depth {
                for i in 0..config.fanout.max(1) {
                    let c = b.internal(t, format!("{}c{i}", level));
                    frontier.push((c, level + 1));
                }
            } else {
                for i in 0..config.accesses_per_leaf.max(1) {
                    let obj = objects[zipf.sample(&mut rng)];
                    let is_read = rng.gen_bool(config.read_fraction.clamp(0.0, 1.0));
                    let (kind, opcode, param) = match (config.semantics, is_read) {
                        (_, true) => (AccessKind::Read, rng.gen_range(0..2u16), 0),
                        (SemanticsKind::Registers, false) => {
                            (AccessKind::Write, 0, rng.gen_range(1..100))
                        }
                        (SemanticsKind::Counters, false) => {
                            (AccessKind::Write, 0, rng.gen_range(-5..6))
                        }
                        (SemanticsKind::Accounts, false) => (
                            AccessKind::Write,
                            rng.gen_range(0..2u16),
                            rng.gen_range(1..20),
                        ),
                        (SemanticsKind::Sets, false) => (
                            AccessKind::Write,
                            rng.gen_range(0..2u16),
                            rng.gen_range(0..6),
                        ),
                        (SemanticsKind::Queues, false) => (
                            AccessKind::Write,
                            rng.gen_range(0..2u16),
                            rng.gen_range(0..50),
                        ),
                    };
                    if is_read {
                        reads += 1;
                    } else {
                        writes += 1;
                    }
                    b.access(t, format!("a{i}"), obj, kind, opcode, param);
                }
            }
        }
        let tree = Arc::new(b.build());
        let semantics: Vec<StdSemantics> = (0..tree.object_count())
            .map(|_| match config.semantics {
                SemanticsKind::Registers => StdSemantics::register(0),
                SemanticsKind::Counters => StdSemantics::counter(0),
                SemanticsKind::Accounts => StdSemantics::account(100),
                SemanticsKind::Sets => StdSemantics::IntSet,
                SemanticsKind::Queues => StdSemantics::Queue,
            })
            .collect();
        let mut spec = SystemSpec::new(tree.clone(), semantics);
        if config.sequential_children {
            for t in tree.all_tx() {
                if !tree.is_access(t) {
                    spec = spec.with_program(t, TxProgram::sequential(tree.children(t).to_vec()));
                }
            }
        }
        Workload {
            spec,
            seed,
            reads,
            writes,
        }
    }

    /// Generate an *all-writes* twin of this workload: same tree shape,
    /// seed and parameters, but every access declared a write (the paper's
    /// exclusive-locking degeneracy, experiment E8). Equivalent to setting
    /// `read_fraction = 0` with the same seed — but this variant keeps the
    /// same operations, merely re-declaring their lock class via
    /// `treat_reads_as_writes`.
    pub fn exclusive_twin(&self) -> Workload {
        let mut w = self.clone();
        w.spec.lock_config.treat_reads_as_writes = true;
        w
    }
}

/// Proptest strategies over workload shapes.
///
/// Property tests (see `tests/workload_props.rs`) draw [`WorkloadConfig`]s
/// from these strategies instead of hand-picking shapes, so invariants are
/// checked across the whole parameter space the experiment suite uses.
/// Failing shapes persist to `proptest-regressions/` and replay first.
pub mod strategies {
    use super::{SemanticsKind, WorkloadConfig};
    use proptest::prelude::*;

    /// Any of the five object-semantics families.
    pub fn semantics_kind() -> impl Strategy<Value = SemanticsKind> {
        (0usize..5).prop_map(|i| match i {
            0 => SemanticsKind::Registers,
            1 => SemanticsKind::Counters,
            2 => SemanticsKind::Accounts,
            3 => SemanticsKind::Sets,
            _ => SemanticsKind::Queues,
        })
    }

    /// Small-but-interesting workload shapes: each field spans the range
    /// the experiment tables actually exercise (up to 4 top-level
    /// transactions, nesting depth 2, fanout 3), so generated systems stay
    /// cheap enough to run and check hundreds of times per property.
    pub fn workload_config() -> impl Strategy<Value = WorkloadConfig> {
        (
            (1usize..5, 0u32..3, 1usize..4, 1usize..4, 1usize..7),
            (0.0f64..1.0, 0.0f64..1.5, semantics_kind(), any::<bool>()),
        )
            .prop_map(
                |(
                    (top_level, depth, fanout, accesses_per_leaf, objects),
                    (read_fraction, zipf_theta, semantics, sequential_children),
                )| WorkloadConfig {
                    top_level,
                    depth,
                    fanout,
                    accesses_per_leaf,
                    objects,
                    read_fraction,
                    zipf_theta,
                    semantics,
                    sequential_children,
                },
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation() {
        let cfg = WorkloadConfig::default();
        let a = Workload::generate(&cfg, 7);
        let b = Workload::generate(&cfg, 7);
        assert_eq!(a.spec.tree.len(), b.spec.tree.len());
        assert_eq!(a.reads, b.reads);
        assert_eq!(a.writes, b.writes);
        // Same labels and kinds throughout.
        for t in a.spec.tree.all_tx() {
            assert_eq!(a.spec.tree.access(t), b.spec.tree.access(t));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = WorkloadConfig {
            objects: 8,
            ..Default::default()
        };
        let a = Workload::generate(&cfg, 1);
        let b = Workload::generate(&cfg, 2);
        let objs_a: Vec<_> = a
            .spec
            .tree
            .all_tx()
            .filter_map(|t| a.spec.tree.access(t))
            .collect();
        let objs_b: Vec<_> = b
            .spec
            .tree
            .all_tx()
            .filter_map(|t| b.spec.tree.access(t))
            .collect();
        assert_ne!(
            objs_a, objs_b,
            "two seeds produced identical access patterns"
        );
    }

    #[test]
    fn tree_shape_matches_config() {
        let cfg = WorkloadConfig {
            top_level: 2,
            depth: 2,
            fanout: 3,
            accesses_per_leaf: 2,
            ..Default::default()
        };
        let w = Workload::generate(&cfg, 0);
        let tree = &w.spec.tree;
        assert_eq!(tree.children(TxTree::ROOT).len(), 2);
        // 2 top + 2*3 level-1 + 2*9 level-2 internals + 18*2 accesses + root
        assert_eq!(tree.len(), 1 + 2 + 6 + 18 + 36);
        assert_eq!(w.reads + w.writes, 36);
    }

    #[test]
    fn read_fraction_extremes() {
        let all_reads = Workload::generate(
            &WorkloadConfig {
                read_fraction: 1.0,
                ..Default::default()
            },
            3,
        );
        assert_eq!(all_reads.writes, 0);
        let all_writes = Workload::generate(
            &WorkloadConfig {
                read_fraction: 0.0,
                ..Default::default()
            },
            3,
        );
        assert_eq!(all_writes.reads, 0);
    }

    #[test]
    fn zipf_skew_concentrates_accesses() {
        let cfg = WorkloadConfig {
            top_level: 8,
            accesses_per_leaf: 4,
            objects: 8,
            zipf_theta: 1.2,
            ..Default::default()
        };
        let w = Workload::generate(&cfg, 5);
        let mut counts = vec![0usize; w.spec.tree.object_count()];
        for t in w.spec.tree.all_tx() {
            if let Some(info) = w.spec.tree.access(t) {
                counts[info.object.index()] += 1;
            }
        }
        let max = *counts.iter().max().unwrap();
        let total: usize = counts.iter().sum();
        assert!(max * 3 > total, "no hotspot under zipf 1.2: {counts:?}");
    }

    #[test]
    fn exclusive_twin_only_flips_lock_config() {
        let w = Workload::generate(&WorkloadConfig::default(), 9);
        let e = w.exclusive_twin();
        assert!(e.spec.lock_config.treat_reads_as_writes);
        assert!(!w.spec.lock_config.treat_reads_as_writes);
        assert_eq!(w.spec.tree.len(), e.spec.tree.len());
    }

    #[test]
    fn sequential_children_programs() {
        let cfg = WorkloadConfig {
            sequential_children: true,
            ..Default::default()
        };
        let w = Workload::generate(&cfg, 11);
        let t0_children = w.spec.tree.children(TxTree::ROOT);
        let prog = w.spec.program_of(TxTree::ROOT);
        assert_eq!(prog.waves.len(), t0_children.len());
    }
}
