//! Seeded fault plans for the runtime's injection hooks.
//!
//! [`SeededFaults`] implements [`ntx_runtime::FaultInjector`] as a pure
//! function of `(seed, call index)`: the i-th consultation of the injector
//! always returns the same decision for the same seed. In a single-threaded
//! harness the sequence of consultations is itself deterministic, so one
//! `u64` seed reproduces an entire faulty execution byte for byte.

use crate::sync::atomic::{AtomicU64, Ordering};

use ntx_runtime::{FaultAction, FaultContext, FaultInjector, FaultPoint};

/// Per-mille probabilities for each fault kind, by yield point.
///
/// At a lock request (entry or blocked round) the spontaneous kinds
/// (`abort_pm`, `crash_pm`) always apply; the wait-shaped kinds
/// (`timeout_pm`, `victim_pm`) apply only once the request has blocked.
/// At commit only `commit_abort_pm` and `crash_pm` apply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// ‰ chance a lock request spontaneously aborts the requester's
    /// subtree.
    pub abort_pm: u32,
    /// ‰ chance a blocked lock request fails as if its wait budget ran
    /// out.
    pub timeout_pm: u32,
    /// ‰ chance a blocked lock request is killed as a deadlock victim.
    pub victim_pm: u32,
    /// ‰ chance the requester's whole top-level transaction crashes.
    pub crash_pm: u32,
    /// ‰ chance a commit spontaneously aborts instead.
    pub commit_abort_pm: u32,
}

impl FaultPlan {
    /// No faults ever (the injector still gets consulted — useful for
    /// measuring hook overhead).
    pub fn none() -> FaultPlan {
        FaultPlan {
            abort_pm: 0,
            timeout_pm: 0,
            victim_pm: 0,
            crash_pm: 0,
            commit_abort_pm: 0,
        }
    }

    /// Rare faults: most transactions complete, every failure path still
    /// gets exercised over a few hundred seeds.
    pub fn light() -> FaultPlan {
        FaultPlan {
            abort_pm: 12,
            timeout_pm: 40,
            victim_pm: 20,
            crash_pm: 4,
            commit_abort_pm: 12,
        }
    }

    /// Frequent faults: abort/recovery paths dominate the execution.
    pub fn heavy() -> FaultPlan {
        FaultPlan {
            abort_pm: 60,
            timeout_pm: 150,
            victim_pm: 80,
            crash_pm: 25,
            commit_abort_pm: 60,
        }
    }

    /// Parse a plan name as used by the `ntx fuzz` CLI.
    pub fn by_name(name: &str) -> Option<FaultPlan> {
        match name {
            "none" => Some(FaultPlan::none()),
            "light" => Some(FaultPlan::light()),
            "heavy" => Some(FaultPlan::heavy()),
            _ => None,
        }
    }
}

/// Seeded process-crash plan for the runtime's WAL yield points.
///
/// Kept separate from [`FaultPlan`] so existing fuzz seeds replay byte for
/// byte: a crash plan of [`CrashPlan::none`] consumes draws at WAL points
/// only when a WAL is configured, which no pre-durability harness does.
/// `pm` is the per-mille chance of killing the process at an *enabled*
/// point; the four flags select which of the runtime's WAL yield points are
/// eligible.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashPlan {
    /// ‰ chance of a process kill at each enabled WAL yield point.
    pub pm: u32,
    /// Eligible: before any commit record is appended.
    pub pre_append: bool,
    /// Eligible: between the `Publish` records and the `Commit` fence.
    pub mid_commit: bool,
    /// Eligible: after the fence is appended, before the fsync.
    pub post_append: bool,
    /// Eligible: between a checkpoint's two fsyncs (old segments still on
    /// disk, new segment not yet durable).
    pub checkpoint: bool,
}

impl CrashPlan {
    /// Never crash (WAL yield points always continue).
    pub fn none() -> CrashPlan {
        CrashPlan {
            pm: 0,
            pre_append: false,
            mid_commit: false,
            post_append: false,
            checkpoint: false,
        }
    }

    /// Crash with probability `pm`‰ at every WAL yield point.
    pub fn all(pm: u32) -> CrashPlan {
        CrashPlan {
            pm,
            pre_append: true,
            mid_commit: true,
            post_append: true,
            checkpoint: true,
        }
    }

    /// Crash only at one specific WAL yield point.
    pub fn at(point: FaultPoint, pm: u32) -> CrashPlan {
        let mut plan = CrashPlan {
            pm,
            ..CrashPlan::none()
        };
        match point {
            FaultPoint::WalPreAppend => plan.pre_append = true,
            FaultPoint::WalMidCommit => plan.mid_commit = true,
            FaultPoint::WalPostAppend => plan.post_append = true,
            FaultPoint::WalCheckpoint => plan.checkpoint = true,
            _ => {}
        }
        plan
    }

    /// Parse a crash-point selection as used by the `ntx fuzz` CLI:
    /// `"all"`, or a comma-separated subset of
    /// `pre-append,mid-commit,post-append,checkpoint`.
    pub fn by_names(names: &str, pm: u32) -> Option<CrashPlan> {
        if names == "all" {
            return Some(CrashPlan::all(pm));
        }
        let mut plan = CrashPlan {
            pm,
            ..CrashPlan::none()
        };
        for name in names.split(',') {
            match name.trim() {
                "pre-append" => plan.pre_append = true,
                "mid-commit" => plan.mid_commit = true,
                "post-append" => plan.post_append = true,
                "checkpoint" => plan.checkpoint = true,
                _ => return None,
            }
        }
        Some(plan)
    }

    /// Whether this plan can fire at `point`.
    pub fn enabled(&self, point: FaultPoint) -> bool {
        self.pm > 0
            && match point {
                FaultPoint::WalPreAppend => self.pre_append,
                FaultPoint::WalMidCommit => self.mid_commit,
                FaultPoint::WalPostAppend => self.post_append,
                FaultPoint::WalCheckpoint => self.checkpoint,
                _ => false,
            }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Deterministic counter-keyed fault injector.
pub struct SeededFaults {
    seed: u64,
    plan: FaultPlan,
    crash: CrashPlan,
    calls: AtomicU64,
}

impl SeededFaults {
    /// An injector whose decision sequence is fixed by `seed` (no process
    /// crashes — WAL yield points always continue).
    pub fn new(seed: u64, plan: FaultPlan) -> SeededFaults {
        SeededFaults::with_crash(seed, plan, CrashPlan::none())
    }

    /// An injector that can also kill the process at WAL yield points.
    pub fn with_crash(seed: u64, plan: FaultPlan, crash: CrashPlan) -> SeededFaults {
        SeededFaults {
            seed,
            plan,
            crash,
            calls: AtomicU64::new(0),
        }
    }

    /// How many times the runtime consulted this injector.
    pub fn calls(&self) -> u64 {
        // relaxed(fault-calls): single-threaded fuzz driver
        self.calls.load(Ordering::Relaxed)
    }
}

impl FaultInjector for SeededFaults {
    fn decide(&self, ctx: &FaultContext) -> FaultAction {
        // relaxed(fault-calls): single-threaded fuzz driver
        let i = self.calls.fetch_add(1, Ordering::Relaxed);
        let r = splitmix64(self.seed ^ i.wrapping_mul(0xA076_1D64_78BD_642F)) % 1000;
        let r = r as u32;
        let p = &self.plan;
        // Stack the per-kind bands on [0, 1000); a draw below the stacked
        // boundary picks the corresponding kind.
        let mut bound = 0u32;
        let mut band = |pm: u32, action: FaultAction| {
            bound += pm;
            (r < bound).then_some(action)
        };
        let hit = match ctx.point {
            FaultPoint::LockRequest => band(p.abort_pm, FaultAction::Abort)
                .or_else(|| band(p.crash_pm, FaultAction::CrashSubtree)),
            FaultPoint::LockWait => band(p.abort_pm, FaultAction::Abort)
                .or_else(|| band(p.crash_pm, FaultAction::CrashSubtree))
                .or_else(|| band(p.timeout_pm, FaultAction::Timeout))
                .or_else(|| band(p.victim_pm, FaultAction::DeadlockVictim)),
            FaultPoint::Commit => band(p.commit_abort_pm, FaultAction::Abort)
                .or_else(|| band(p.crash_pm, FaultAction::CrashSubtree)),
            FaultPoint::WalPreAppend
            | FaultPoint::WalMidCommit
            | FaultPoint::WalPostAppend
            | FaultPoint::WalCheckpoint => (self.crash.enabled(ctx.point) && r < self.crash.pm)
                .then_some(FaultAction::CrashProcess),
        };
        hit.unwrap_or(FaultAction::Continue)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(point: FaultPoint) -> FaultContext {
        FaultContext {
            point,
            tx: 1,
            top: 1,
            depth: 0,
            obj: Some(0),
            write: false,
        }
    }

    #[test]
    fn same_seed_same_decisions() {
        let a = SeededFaults::new(42, FaultPlan::heavy());
        let b = SeededFaults::new(42, FaultPlan::heavy());
        let da: Vec<_> = (0..200)
            .map(|_| a.decide(&ctx(FaultPoint::LockWait)))
            .collect();
        let db: Vec<_> = (0..200)
            .map(|_| b.decide(&ctx(FaultPoint::LockWait)))
            .collect();
        assert_eq!(da, db);
        assert_eq!(a.calls(), 200);
    }

    #[test]
    fn none_plan_never_fires() {
        let inj = SeededFaults::new(7, FaultPlan::none());
        for _ in 0..500 {
            assert_eq!(
                inj.decide(&ctx(FaultPoint::LockWait)),
                FaultAction::Continue
            );
            assert_eq!(inj.decide(&ctx(FaultPoint::Commit)), FaultAction::Continue);
        }
    }

    #[test]
    fn heavy_plan_fires_every_kind() {
        let inj = SeededFaults::new(3, FaultPlan::heavy());
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..3000 {
            seen.insert(format!("{}", inj.decide(&ctx(FaultPoint::LockWait))));
        }
        for kind in ["abort", "crash", "timeout", "victim", "continue"] {
            assert!(seen.contains(kind), "never drew {kind}: {seen:?}");
        }
    }

    #[test]
    fn commit_point_only_aborts_or_crashes() {
        let inj = SeededFaults::new(11, FaultPlan::heavy());
        for _ in 0..2000 {
            let d = inj.decide(&ctx(FaultPoint::Commit));
            assert!(
                matches!(
                    d,
                    FaultAction::Continue | FaultAction::Abort | FaultAction::CrashSubtree
                ),
                "{d:?} at commit"
            );
        }
    }

    #[test]
    fn plan_names_resolve() {
        assert_eq!(FaultPlan::by_name("none"), Some(FaultPlan::none()));
        assert_eq!(FaultPlan::by_name("light"), Some(FaultPlan::light()));
        assert_eq!(FaultPlan::by_name("heavy"), Some(FaultPlan::heavy()));
        assert_eq!(FaultPlan::by_name("bogus"), None);
    }

    #[test]
    fn crash_plan_names_resolve() {
        assert_eq!(CrashPlan::by_names("all", 5), Some(CrashPlan::all(5)));
        assert_eq!(
            CrashPlan::by_names("mid-commit", 9),
            Some(CrashPlan::at(FaultPoint::WalMidCommit, 9))
        );
        let two = CrashPlan::by_names("pre-append, checkpoint", 1).unwrap();
        assert!(two.pre_append && two.checkpoint && !two.mid_commit && !two.post_append);
        assert_eq!(CrashPlan::by_names("bogus", 1), None);
    }

    #[test]
    fn crash_plan_gates_wal_points() {
        let plan = CrashPlan::at(FaultPoint::WalPostAppend, 1000);
        assert!(plan.enabled(FaultPoint::WalPostAppend));
        assert!(!plan.enabled(FaultPoint::WalPreAppend));
        assert!(!plan.enabled(FaultPoint::LockRequest));
        assert!(!CrashPlan::all(0).enabled(FaultPoint::WalPostAppend));

        // A certain (1000‰) crash fires at its point and only there.
        let inj = SeededFaults::with_crash(5, FaultPlan::none(), plan);
        assert_eq!(
            inj.decide(&ctx(FaultPoint::WalPostAppend)),
            FaultAction::CrashProcess
        );
        assert_eq!(
            inj.decide(&ctx(FaultPoint::WalPreAppend)),
            FaultAction::Continue
        );
        assert_eq!(inj.decide(&ctx(FaultPoint::Commit)), FaultAction::Continue);
    }

    #[test]
    fn no_crash_plan_never_kills_at_wal_points() {
        let inj = SeededFaults::new(21, FaultPlan::heavy());
        for point in [
            FaultPoint::WalPreAppend,
            FaultPoint::WalMidCommit,
            FaultPoint::WalPostAppend,
            FaultPoint::WalCheckpoint,
        ] {
            for _ in 0..200 {
                assert_eq!(inj.decide(&ctx(point)), FaultAction::Continue);
            }
        }
    }
}
