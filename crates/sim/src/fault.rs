//! Seeded fault plans for the runtime's injection hooks.
//!
//! [`SeededFaults`] implements [`ntx_runtime::FaultInjector`] as a pure
//! function of `(seed, call index)`: the i-th consultation of the injector
//! always returns the same decision for the same seed. In a single-threaded
//! harness the sequence of consultations is itself deterministic, so one
//! `u64` seed reproduces an entire faulty execution byte for byte.

use std::sync::atomic::{AtomicU64, Ordering};

use ntx_runtime::{FaultAction, FaultContext, FaultInjector, FaultPoint};

/// Per-mille probabilities for each fault kind, by yield point.
///
/// At a lock request (entry or blocked round) the spontaneous kinds
/// (`abort_pm`, `crash_pm`) always apply; the wait-shaped kinds
/// (`timeout_pm`, `victim_pm`) apply only once the request has blocked.
/// At commit only `commit_abort_pm` and `crash_pm` apply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// ‰ chance a lock request spontaneously aborts the requester's
    /// subtree.
    pub abort_pm: u32,
    /// ‰ chance a blocked lock request fails as if its wait budget ran
    /// out.
    pub timeout_pm: u32,
    /// ‰ chance a blocked lock request is killed as a deadlock victim.
    pub victim_pm: u32,
    /// ‰ chance the requester's whole top-level transaction crashes.
    pub crash_pm: u32,
    /// ‰ chance a commit spontaneously aborts instead.
    pub commit_abort_pm: u32,
}

impl FaultPlan {
    /// No faults ever (the injector still gets consulted — useful for
    /// measuring hook overhead).
    pub fn none() -> FaultPlan {
        FaultPlan {
            abort_pm: 0,
            timeout_pm: 0,
            victim_pm: 0,
            crash_pm: 0,
            commit_abort_pm: 0,
        }
    }

    /// Rare faults: most transactions complete, every failure path still
    /// gets exercised over a few hundred seeds.
    pub fn light() -> FaultPlan {
        FaultPlan {
            abort_pm: 12,
            timeout_pm: 40,
            victim_pm: 20,
            crash_pm: 4,
            commit_abort_pm: 12,
        }
    }

    /// Frequent faults: abort/recovery paths dominate the execution.
    pub fn heavy() -> FaultPlan {
        FaultPlan {
            abort_pm: 60,
            timeout_pm: 150,
            victim_pm: 80,
            crash_pm: 25,
            commit_abort_pm: 60,
        }
    }

    /// Parse a plan name as used by the `ntx fuzz` CLI.
    pub fn by_name(name: &str) -> Option<FaultPlan> {
        match name {
            "none" => Some(FaultPlan::none()),
            "light" => Some(FaultPlan::light()),
            "heavy" => Some(FaultPlan::heavy()),
            _ => None,
        }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Deterministic counter-keyed fault injector.
pub struct SeededFaults {
    seed: u64,
    plan: FaultPlan,
    calls: AtomicU64,
}

impl SeededFaults {
    /// An injector whose decision sequence is fixed by `seed`.
    pub fn new(seed: u64, plan: FaultPlan) -> SeededFaults {
        SeededFaults {
            seed,
            plan,
            calls: AtomicU64::new(0),
        }
    }

    /// How many times the runtime consulted this injector.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }
}

impl FaultInjector for SeededFaults {
    fn decide(&self, ctx: &FaultContext) -> FaultAction {
        let i = self.calls.fetch_add(1, Ordering::Relaxed);
        let r = splitmix64(self.seed ^ i.wrapping_mul(0xA076_1D64_78BD_642F)) % 1000;
        let r = r as u32;
        let p = &self.plan;
        // Stack the per-kind bands on [0, 1000); a draw below the stacked
        // boundary picks the corresponding kind.
        let mut bound = 0u32;
        let mut band = |pm: u32, action: FaultAction| {
            bound += pm;
            (r < bound).then_some(action)
        };
        let hit = match ctx.point {
            FaultPoint::LockRequest => band(p.abort_pm, FaultAction::Abort)
                .or_else(|| band(p.crash_pm, FaultAction::CrashSubtree)),
            FaultPoint::LockWait => band(p.abort_pm, FaultAction::Abort)
                .or_else(|| band(p.crash_pm, FaultAction::CrashSubtree))
                .or_else(|| band(p.timeout_pm, FaultAction::Timeout))
                .or_else(|| band(p.victim_pm, FaultAction::DeadlockVictim)),
            FaultPoint::Commit => band(p.commit_abort_pm, FaultAction::Abort)
                .or_else(|| band(p.crash_pm, FaultAction::CrashSubtree)),
        };
        hit.unwrap_or(FaultAction::Continue)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(point: FaultPoint) -> FaultContext {
        FaultContext {
            point,
            tx: 1,
            top: 1,
            depth: 0,
            obj: Some(0),
            write: false,
        }
    }

    #[test]
    fn same_seed_same_decisions() {
        let a = SeededFaults::new(42, FaultPlan::heavy());
        let b = SeededFaults::new(42, FaultPlan::heavy());
        let da: Vec<_> = (0..200)
            .map(|_| a.decide(&ctx(FaultPoint::LockWait)))
            .collect();
        let db: Vec<_> = (0..200)
            .map(|_| b.decide(&ctx(FaultPoint::LockWait)))
            .collect();
        assert_eq!(da, db);
        assert_eq!(a.calls(), 200);
    }

    #[test]
    fn none_plan_never_fires() {
        let inj = SeededFaults::new(7, FaultPlan::none());
        for _ in 0..500 {
            assert_eq!(
                inj.decide(&ctx(FaultPoint::LockWait)),
                FaultAction::Continue
            );
            assert_eq!(inj.decide(&ctx(FaultPoint::Commit)), FaultAction::Continue);
        }
    }

    #[test]
    fn heavy_plan_fires_every_kind() {
        let inj = SeededFaults::new(3, FaultPlan::heavy());
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..3000 {
            seen.insert(format!("{}", inj.decide(&ctx(FaultPoint::LockWait))));
        }
        for kind in ["abort", "crash", "timeout", "victim", "continue"] {
            assert!(seen.contains(kind), "never drew {kind}: {seen:?}");
        }
    }

    #[test]
    fn commit_point_only_aborts_or_crashes() {
        let inj = SeededFaults::new(11, FaultPlan::heavy());
        for _ in 0..2000 {
            let d = inj.decide(&ctx(FaultPoint::Commit));
            assert!(
                matches!(
                    d,
                    FaultAction::Continue | FaultAction::Abort | FaultAction::CrashSubtree
                ),
                "{d:?} at commit"
            );
        }
    }

    #[test]
    fn plan_names_resolve() {
        assert_eq!(FaultPlan::by_name("none"), Some(FaultPlan::none()));
        assert_eq!(FaultPlan::by_name("light"), Some(FaultPlan::light()));
        assert_eq!(FaultPlan::by_name("heavy"), Some(FaultPlan::heavy()));
        assert_eq!(FaultPlan::by_name("bogus"), None);
    }
}
