//! Logical-time parallel makespan simulation.
//!
//! Wall-clock throughput only reflects a locking discipline's admitted
//! concurrency when real cores execute transactions in parallel; on a
//! single-core host every discipline looks the same. This module measures
//! concurrency in *logical time* instead, directly on the formal model:
//!
//! * bookkeeping operations (creates, requests, commits, reports, informs)
//!   are free — they model control transfers, not data work;
//! * each access response (`REQUEST_COMMIT` of an access) costs one *tick*;
//! * in one tick, **every access response currently enabled** fires —
//!   except those disabled by responses earlier in the same tick (two
//!   sibling writes conflict: the first to fire takes the lock, the second
//!   waits a tick; any number of reads share a tick).
//!
//! The resulting **makespan** (ticks to quiescence) is the schedule length
//! of an infinitely-parallel machine constrained only by the locking rules;
//! `accesses / makespan` is the admitted parallel speedup. Running the same
//! workload with `treat_reads_as_writes` gives the exclusive-locking
//! baseline, and the serial system's makespan is simply the access count —
//! exactly the comparison the paper's introduction motivates.

use ntx_automata::System;
use ntx_model::{Action, ObjectSemantics, SystemSpec};

/// Result of a makespan simulation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Makespan {
    /// Logical ticks until quiescence.
    pub ticks: usize,
    /// Access responses performed (= total data operations).
    pub accesses: usize,
    /// `accesses / ticks`: mean admitted parallelism.
    pub speedup: f64,
    /// `true` if the system quiesced (always, unless `max_ticks` hit).
    pub completed: bool,
}

fn is_access_response<S: ObjectSemantics>(spec: &SystemSpec<S>, a: &Action) -> bool {
    matches!(*a, Action::RequestCommit(t, _) if spec.tree.is_access(t))
}

/// Fire all enabled non-access actions until only access responses (or
/// nothing) remain enabled. Deterministic: always picks the first enabled
/// action. Requires the spec's dedup scheduler options (the defaults) so
/// the bookkeeping closure terminates.
fn drain_bookkeeping<S: ObjectSemantics>(spec: &SystemSpec<S>, sys: &mut System<Action>) {
    loop {
        let enabled = sys.enabled_outputs();
        let Some(a) = enabled.iter().find(|a| !is_access_response(spec, a)) else {
            return;
        };
        let a = *a;
        sys.perform(&a);
    }
}

/// Simulate the R/W Locking system of `spec` on an infinitely parallel
/// machine (see module docs). Aborts never fire — this measures the
/// fault-free concurrency of the locking discipline.
pub fn parallel_makespan<S: ObjectSemantics>(spec: &SystemSpec<S>, max_ticks: usize) -> Makespan {
    let mut spec = spec.clone();
    spec.generic_config.allow_aborts = false;
    let mut sys = spec.concurrent_system();
    let mut ticks = 0usize;
    let mut accesses = 0usize;
    loop {
        drain_bookkeeping(&spec, &mut sys);
        let ready: Vec<Action> = sys
            .enabled_outputs()
            .into_iter()
            .filter(|a| is_access_response(&spec, a))
            .collect();
        if ready.is_empty() {
            break;
        }
        if ticks >= max_ticks {
            return Makespan {
                ticks,
                accesses,
                speedup: accesses as f64 / ticks.max(1) as f64,
                completed: false,
            };
        }
        ticks += 1;
        for a in &ready {
            // Re-check: an earlier response this tick may have taken a
            // conflicting lock.
            let still_enabled = sys.enabled_outputs().iter().any(|e| e == a);
            if still_enabled {
                sys.perform(a);
                accesses += 1;
            }
        }
    }
    Makespan {
        ticks,
        accesses,
        speedup: if ticks == 0 {
            0.0
        } else {
            accesses as f64 / ticks as f64
        },
        completed: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{Workload, WorkloadConfig};
    use ntx_model::{StdSemantics, SystemSpec};
    use ntx_tree::{TxTree, TxTreeBuilder};
    use std::sync::Arc;

    /// `n` top-level transactions, each with one access to the same object.
    fn one_object(n: usize, read: bool) -> SystemSpec<StdSemantics> {
        let mut b = TxTreeBuilder::new();
        let x = b.object("x");
        for i in 0..n {
            let t = b.internal(TxTree::ROOT, format!("t{i}"));
            if read {
                b.read(t, "a", x);
            } else {
                b.write(t, "a", x, 1);
            }
        }
        SystemSpec::new(Arc::new(b.build()), vec![StdSemantics::register(0)])
    }

    #[test]
    fn concurrent_reads_share_one_tick() {
        let m = parallel_makespan(&one_object(6, true), 1000);
        assert!(m.completed);
        assert_eq!(m.accesses, 6);
        assert_eq!(m.ticks, 1, "all six reads should run in parallel");
        assert!((m.speedup - 6.0).abs() < 1e-9);
    }

    #[test]
    fn conflicting_writes_serialize() {
        let m = parallel_makespan(&one_object(6, false), 1000);
        assert!(m.completed);
        assert_eq!(m.accesses, 6);
        assert_eq!(m.ticks, 6, "writes to one object must serialize");
    }

    #[test]
    fn exclusive_mode_serializes_reads() {
        let mut spec = one_object(6, true);
        spec.lock_config.treat_reads_as_writes = true;
        let m = parallel_makespan(&spec, 1000);
        assert_eq!(m.ticks, 6, "exclusive locking removes read concurrency");
    }

    #[test]
    fn independent_objects_run_in_parallel() {
        let mut b = TxTreeBuilder::new();
        let objs: Vec<_> = (0..4).map(|i| b.object(format!("x{i}"))).collect();
        for (i, &x) in objs.iter().enumerate() {
            let t = b.internal(TxTree::ROOT, format!("t{i}"));
            b.write(t, "w", x, 1);
        }
        let spec = SystemSpec::new(
            Arc::new(b.build()),
            (0..4).map(|_| StdSemantics::register(0)).collect(),
        );
        let m = parallel_makespan(&spec, 1000);
        assert_eq!(m.ticks, 1, "disjoint writes are independent");
        assert_eq!(m.accesses, 4);
    }

    #[test]
    fn moss_never_slower_than_exclusive_on_random_workloads() {
        // Some workloads deadlock under one discipline but not the other
        // (the no-abort makespan model has no victim to kill), which makes
        // tick counts incomparable — only compare seeds where both runs
        // performed every access, and require enough of those to be
        // meaningful.
        let mut compared = 0usize;
        for seed in 0..12 {
            let cfg = WorkloadConfig {
                top_level: 4,
                depth: 1,
                fanout: 2,
                accesses_per_leaf: 1,
                objects: 3,
                read_fraction: 0.7,
                ..Default::default()
            };
            let w = Workload::generate(&cfg, seed);
            let total = w.reads + w.writes;
            let moss = parallel_makespan(&w.spec, 10_000);
            let excl = parallel_makespan(&w.exclusive_twin().spec, 10_000);
            assert!(moss.completed && excl.completed);
            if moss.accesses != total || excl.accesses != total {
                continue; // deadlocked under at least one discipline
            }
            compared += 1;
            assert!(
                moss.ticks <= excl.ticks,
                "seed {seed}: Moss ({}) slower than exclusive ({})",
                moss.ticks,
                excl.ticks
            );
        }
        assert!(compared >= 6, "only {compared} deadlock-free seeds");
    }

    #[test]
    fn max_ticks_respected() {
        let m = parallel_makespan(&one_object(50, false), 10);
        assert!(!m.completed);
        assert_eq!(m.ticks, 10);
    }
}
