//! Schedule analytics.
//!
//! Experiments quantify the *concurrency* a locking discipline admits and
//! the *work saved* by nested recovery. Both are read off schedules: how
//! long accesses wait between invocation (`CREATE`) and response
//! (`REQUEST_COMMIT`), how many unrelated transactions are live at once
//! (impossible in serial schedules — Lemma 6), how much of the performed
//! work survives to top-level commit.

use std::collections::HashMap;

use ntx_model::Action;
use ntx_tree::{TxId, TxTree};

/// Summary statistics of one schedule.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ScheduleMetrics {
    /// Total events.
    pub len: usize,
    /// `CREATE` events.
    pub creates: usize,
    /// `COMMIT` events.
    pub commits: usize,
    /// `ABORT` events.
    pub aborts: usize,
    /// Commits of children of `T₀`.
    pub top_level_commits: usize,
    /// Aborts of children of `T₀`.
    pub top_level_aborts: usize,
    /// Access responses (`REQUEST_COMMIT` of access leaves).
    pub access_responses: usize,
    /// Mean events between an access's `CREATE` and its response — the
    /// model-level analogue of lock wait time.
    pub mean_access_wait: f64,
    /// Largest observed wait.
    pub max_access_wait: usize,
    /// Mean number of live transactions per event.
    pub mean_live: f64,
    /// Maximum number of simultaneously live transactions.
    pub max_live: usize,
    /// Maximum number of *unrelated* (no ancestor relation) live pairs seen
    /// at any point — strictly 0 for serial schedules (Lemma 6), the
    /// headline concurrency measure for locking disciplines.
    pub max_unrelated_live_pairs: usize,
    /// Accesses that responded but whose effects died with an aborted
    /// ancestor — wasted work.
    pub wasted_accesses: usize,
    /// Access responses delivered *after* the `ABORT` of an ancestor — the
    /// "orphan activity" of §3.5. Orphans that keep observing state after
    /// their dooming abort may see mutually inconsistent data; this counts
    /// how often plain R/W Locking lets that happen (the motivation for
    /// the paper's companion orphan-elimination work, [HLMW]).
    pub orphan_responses: usize,
}

/// Analyze a schedule against its system type.
pub fn analyze(events: &[Action], tree: &TxTree) -> ScheduleMetrics {
    let mut m = ScheduleMetrics {
        len: events.len(),
        ..Default::default()
    };
    let mut create_pos: HashMap<TxId, usize> = HashMap::new();
    let mut live: Vec<TxId> = Vec::new();
    let mut aborted: std::collections::HashSet<TxId> = std::collections::HashSet::new();
    let mut wait_total = 0usize;
    let mut live_total = 0usize;
    let mut responded: Vec<TxId> = Vec::new();

    for (i, a) in events.iter().enumerate() {
        match *a {
            Action::Create(t) => {
                m.creates += 1;
                create_pos.insert(t, i);
                live.push(t);
            }
            Action::Commit(t) => {
                m.commits += 1;
                if tree.parent(t) == Some(TxTree::ROOT) {
                    m.top_level_commits += 1;
                }
                live.retain(|&l| l != t);
            }
            Action::Abort(t) => {
                m.aborts += 1;
                aborted.insert(t);
                if tree.parent(t) == Some(TxTree::ROOT) {
                    m.top_level_aborts += 1;
                }
                live.retain(|&l| l != t);
            }
            Action::RequestCommit(t, _) if tree.is_access(t) => {
                m.access_responses += 1;
                if let Some(&c) = create_pos.get(&t) {
                    let wait = i - c - 1;
                    wait_total += wait;
                    m.max_access_wait = m.max_access_wait.max(wait);
                }
                // Orphan activity: some ancestor already aborted in the
                // prefix before this response.
                if tree.ancestors(t).any(|u| aborted.contains(&u)) {
                    m.orphan_responses += 1;
                }
                responded.push(t);
            }
            _ => {}
        }
        live_total += live.len();
        m.max_live = m.max_live.max(live.len());
        let mut unrelated = 0usize;
        for (j, &x) in live.iter().enumerate() {
            for &y in &live[j + 1..] {
                if !tree.related(x, y) {
                    unrelated += 1;
                }
            }
        }
        m.max_unrelated_live_pairs = m.max_unrelated_live_pairs.max(unrelated);
    }

    if m.access_responses > 0 {
        m.mean_access_wait = wait_total as f64 / m.access_responses as f64;
    }
    if m.len > 0 {
        m.mean_live = live_total as f64 / m.len as f64;
    }

    // Wasted work: responded accesses with an aborted ancestor.
    let fates = ntx_model::visibility::Fates::scan(events);
    m.wasted_accesses = responded
        .iter()
        .filter(|&&t| fates.is_orphan(t, tree))
        .count();
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run_concurrent, run_serial, DrivePolicy};
    use crate::workload::{Workload, WorkloadConfig};
    use ntx_model::Value;
    use ntx_tree::TxTreeBuilder;

    #[test]
    fn counts_basic_events() {
        let mut b = TxTreeBuilder::new();
        let x = b.object("x");
        let t = b.internal(TxTree::ROOT, "t");
        let w = b.write(t, "w", x, 1);
        let tree = b.build();
        let events = vec![
            Action::Create(TxTree::ROOT),
            Action::RequestCreate(t),
            Action::Create(t),
            Action::RequestCreate(w),
            Action::Create(w),
            Action::RequestCommit(w, Value(1)),
            Action::Commit(w),
            Action::RequestCommit(t, Value(1)),
            Action::Commit(t),
        ];
        let m = analyze(&events, &tree);
        assert_eq!(m.creates, 3);
        assert_eq!(m.commits, 2);
        assert_eq!(m.top_level_commits, 1);
        assert_eq!(m.access_responses, 1);
        assert_eq!(m.max_access_wait, 0);
        assert_eq!(m.wasted_accesses, 0);
        assert!(m.max_live >= 3);
    }

    #[test]
    fn wasted_work_counted_on_ancestor_abort() {
        let mut b = TxTreeBuilder::new();
        let x = b.object("x");
        let t = b.internal(TxTree::ROOT, "t");
        let w = b.write(t, "w", x, 1);
        let tree = b.build();
        let events = vec![
            Action::Create(t),
            Action::Create(w),
            Action::RequestCommit(w, Value(1)),
            Action::Commit(w),
            Action::Abort(t),
        ];
        let m = analyze(&events, &tree);
        assert_eq!(m.wasted_accesses, 1);
        assert_eq!(m.top_level_aborts, 1);
    }

    #[test]
    fn orphan_responses_counted() {
        // An access responding after its ancestor aborted is orphan
        // activity; before the abort it is not.
        let mut b = TxTreeBuilder::new();
        let x = b.object("x");
        let t = b.internal(TxTree::ROOT, "t");
        let w1 = b.write(t, "w1", x, 1);
        let w2 = b.write(t, "w2", x, 2);
        let tree = b.build();
        let events = vec![
            Action::Create(t),
            Action::Create(w1),
            Action::RequestCommit(w1, Value(1)), // before abort: fine
            Action::Abort(t),
            Action::Create(w2),
            Action::RequestCommit(w2, Value(2)), // orphan activity
        ];
        let m = analyze(&events, &tree);
        assert_eq!(m.orphan_responses, 1);
        assert_eq!(m.wasted_accesses, 2, "both accesses died with t");
    }

    #[test]
    fn orphan_activity_occurs_under_chaos() {
        // §3.5: plain R/W Locking systems let orphans keep running — the
        // observation motivating orphan-elimination algorithms.
        let w = Workload::generate(
            &WorkloadConfig {
                top_level: 3,
                depth: 2,
                fanout: 2,
                ..Default::default()
            },
            31,
        );
        let mut seen = 0usize;
        for seed in 0..40 {
            let out = run_concurrent(&w.spec, seed, &DrivePolicy::chaos());
            seen += analyze(out.schedule.as_slice(), &w.spec.tree).orphan_responses;
        }
        assert!(seen > 0, "no orphan activity in 40 chaotic runs");
    }

    #[test]
    fn serial_schedules_have_no_unrelated_live_pairs() {
        let w = Workload::generate(&WorkloadConfig::default(), 23);
        for seed in 0..5 {
            let out = run_serial(&w.spec, seed, &DrivePolicy::default());
            let m = analyze(out.schedule.as_slice(), &w.spec.tree);
            assert_eq!(m.max_unrelated_live_pairs, 0, "Lemma 6 violated in metrics");
        }
    }

    #[test]
    fn concurrent_schedules_show_concurrency() {
        let w = Workload::generate(
            &WorkloadConfig {
                top_level: 4,
                read_fraction: 1.0,
                ..Default::default()
            },
            23,
        );
        let mut spec = w.spec.clone();
        spec.generic_config.allow_aborts = false;
        let mut saw_concurrency = false;
        for seed in 0..10 {
            let out = run_concurrent(&spec, seed, &DrivePolicy::no_aborts());
            let m = analyze(out.schedule.as_slice(), &spec.tree);
            if m.max_unrelated_live_pairs > 0 {
                saw_concurrency = true;
            }
        }
        assert!(
            saw_concurrency,
            "R/W locking admitted no concurrency on an all-read workload"
        );
    }

    #[test]
    fn access_waits_grow_under_contention() {
        // One hot object, all writes: heavy blocking expected.
        let hot = Workload::generate(
            &WorkloadConfig {
                top_level: 6,
                objects: 1,
                read_fraction: 0.0,
                ..Default::default()
            },
            41,
        );
        let mut spec = hot.spec.clone();
        spec.generic_config.allow_aborts = false;
        let out = run_concurrent(&spec, 1, &DrivePolicy::no_aborts());
        let m = analyze(out.schedule.as_slice(), &spec.tree);
        assert!(m.max_access_wait > 0, "no blocking on a single hot object?");
    }
}
