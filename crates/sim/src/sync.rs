//! The single import point for synchronisation primitives.
//!
//! Mirrors the runtime's shim discipline (R1 in `ntx-lint`): the fuzz
//! harness gets its `Arc` and atomics from here rather than `std::sync`
//! directly, so the workspace-wide lint holds uniformly.

pub(crate) use std::sync::Arc;

/// Atomic types and `Ordering`.
pub(crate) mod atomic {
    pub(crate) use std::sync::atomic::{AtomicU64, Ordering};
}
