//! # ntx-sim — workload generation and simulation drivers
//!
//! Connects the formal model of `ntx-model` to the experiment suite:
//!
//! * [`workload`] — parameterised random system generation (tree shape,
//!   read fraction, hot-spot skew, object semantics), the synthetic
//!   substitute for the production traces a 1987 theory paper never had;
//! * [`zipf`] — a Zipf(θ) sampler for skewed object popularity;
//! * [`parallel`] — logical-time makespan simulation: the concurrency a
//!   locking discipline admits, measured on an idealised parallel machine
//!   (substitutes for multi-core hardware the reproduction host lacks);
//! * [`driver`] — seeded, policy-weighted resolution of scheduler
//!   nondeterminism (how often to fire `ABORT`s, how eagerly to deliver
//!   `INFORM`s), on top of `ntx-automata`'s neutral choosers;
//! * [`metrics`] — schedule analytics: commits/aborts, access wait times,
//!   sibling concurrency — the quantities the experiment tables report;
//! * [`fault`] — seeded fault plans for the runtime's injection hooks;
//! * [`fuzz`] — deterministic fault-injecting schedule fuzzing over the
//!   real runtime, differentially checked against the Theorem 34 model.

pub mod driver;
pub mod fault;
pub mod fuzz;
pub mod metrics;
pub mod parallel;
pub mod workload;
pub mod zipf;

pub(crate) mod sync;

pub use driver::{run_concurrent, run_serial, DrivePolicy, RunOutcome};
pub use fault::{CrashPlan, FaultPlan, SeededFaults};
pub use fuzz::{
    fuzz_crash_run, fuzz_run, CrashFuzzConfig, CrashFuzzOutcome, FuzzConfig, FuzzOutcome,
};
pub use metrics::{analyze, ScheduleMetrics};
pub use parallel::{parallel_makespan, Makespan};
pub use workload::{Workload, WorkloadConfig};
pub use zipf::Zipf;
