//! Property tests over randomly-shaped workloads.
//!
//! Shapes are drawn from [`ntx_sim::workload::strategies`] rather than
//! hand-picked, so the generator's invariants — determinism, tree-shape
//! arithmetic, read/write accounting — and Theorem 34 itself are checked
//! across the whole configuration space the experiments sweep. Failing
//! shapes persist to `proptest-regressions/workload_props.txt` (committed)
//! and replay before fresh cases on every run.

use ntx_model::correctness::check_serial_correctness;
use ntx_sim::workload::strategies::workload_config;
use ntx_sim::{run_concurrent, DrivePolicy, Workload};
use proptest::prelude::*;

proptest! {
    #[test]
    fn generation_is_deterministic(cfg in workload_config(), seed in 0u64..1_000_000) {
        let a = Workload::generate(&cfg, seed);
        let b = Workload::generate(&cfg, seed);
        prop_assert_eq!(a.spec.tree.len(), b.spec.tree.len());
        prop_assert_eq!(a.reads, b.reads);
        prop_assert_eq!(a.writes, b.writes);
        for t in a.spec.tree.all_tx() {
            prop_assert_eq!(a.spec.tree.access(t), b.spec.tree.access(t));
        }
    }

    #[test]
    fn tree_shape_matches_config(cfg in workload_config(), seed in 0u64..1_000_000) {
        let w = Workload::generate(&cfg, seed);
        // top_level subtrees, each a full fanout^depth tree whose deepest
        // transactions carry accesses_per_leaf access leaves.
        let internals_per_top: usize = (0..=cfg.depth).map(|l| cfg.fanout.pow(l)).sum();
        let leaves = cfg.top_level * cfg.fanout.pow(cfg.depth) * cfg.accesses_per_leaf;
        let expected = 1 + cfg.top_level * internals_per_top + leaves;
        prop_assert_eq!(w.spec.tree.len(), expected);
        prop_assert_eq!(w.reads + w.writes, leaves);
    }

    #[test]
    fn read_fraction_extremes_hold(cfg in workload_config(), seed in 0u64..1_000_000) {
        let all_reads = Workload::generate(
            &ntx_sim::WorkloadConfig { read_fraction: 1.0, ..cfg.clone() },
            seed,
        );
        prop_assert_eq!(all_reads.writes, 0);
        let all_writes = Workload::generate(
            &ntx_sim::WorkloadConfig { read_fraction: 0.0, ..cfg },
            seed,
        );
        prop_assert_eq!(all_writes.reads, 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn generated_schedules_satisfy_theorem_34(cfg in workload_config(), seed in 0u64..10_000) {
        let w = Workload::generate(&cfg, seed);
        let out = run_concurrent(&w.spec, seed, &DrivePolicy::default());
        let report = check_serial_correctness(&w.spec, out.schedule.as_slice());
        prop_assert!(
            report.violations.is_empty(),
            "seed {seed} shape {cfg:?}: {:?}",
            report.violations
        );
    }
}
