//! `ntx` — command-line front end for the nested-transaction workspace.
//!
//! ```text
//! ntx check    [--seed N] [--runs K] [--top T] [--depth D] [--read-frac F]
//!              generate workloads, run them concurrently, machine-check
//!              Theorem 34 on every schedule
//! ntx explore  [--budget N]
//!              exhaustively enumerate a small system and check every
//!              schedule
//! ntx makespan [--read-frac F]
//!              logical-time speedup of Moss R/W locking vs exclusive
//!              locking on a generated workload
//! ntx demo     a quick nested-transaction session on the runtime
//! ```

use std::collections::HashMap;

use ntx_model::correctness::{check_exhaustive, check_serial_correctness};
use ntx_sim::workload::{Workload, WorkloadConfig};
use ntx_sim::{parallel_makespan, run_concurrent, DrivePolicy};

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            let value = args.get(i + 1).cloned().unwrap_or_default();
            flags.insert(name.to_owned(), value);
            i += 2;
        } else {
            i += 1;
        }
    }
    flags
}

fn flag<T: std::str::FromStr>(flags: &HashMap<String, String>, name: &str, default: T) -> T {
    flags
        .get(name)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn cmd_check(flags: &HashMap<String, String>) {
    let seed: u64 = flag(flags, "seed", 0);
    let runs: u64 = flag(flags, "runs", 20);
    let cfg = WorkloadConfig {
        top_level: flag(flags, "top", 3),
        depth: flag(flags, "depth", 2),
        fanout: 2,
        accesses_per_leaf: 1,
        objects: flag(flags, "objects", 3),
        read_fraction: flag(flags, "read-frac", 0.5),
        ..Default::default()
    };
    let mut witnesses = 0usize;
    let mut violations = 0usize;
    for i in 0..runs {
        let w = Workload::generate(&cfg, seed + i);
        let out = run_concurrent(&w.spec, seed + i, &DrivePolicy::default());
        let report = check_serial_correctness(&w.spec, out.schedule.as_slice());
        witnesses += report.transactions_checked;
        violations += report.violations.len();
        for v in &report.violations {
            eprintln!("violation (seed {}): {v}", seed + i);
        }
    }
    println!(
        "checked {runs} schedules ({} witnesses): {} violations",
        witnesses, violations
    );
    if violations > 0 {
        std::process::exit(1);
    }
    println!("Theorem 34 held on every schedule ✓");
}

fn cmd_explore(flags: &HashMap<String, String>) {
    use ntx_automata::explore::ExploreConfig;
    use ntx_model::{StdSemantics, SystemSpec};
    use ntx_tree::{TxTree, TxTreeBuilder};

    let budget: usize = flag(flags, "budget", 20_000);
    let mut b = TxTreeBuilder::new();
    let x = b.object("x");
    let t1 = b.internal(TxTree::ROOT, "t1");
    b.write(t1, "w", x, 1);
    let t2 = b.internal(TxTree::ROOT, "t2");
    b.read(t2, "r", x);
    let spec = SystemSpec::new(
        std::sync::Arc::new(b.build()),
        vec![StdSemantics::register(0)],
    );
    let report = check_exhaustive(
        &spec,
        ExploreConfig {
            max_depth: 64,
            max_schedules: budget,
        },
    );
    println!(
        "enumerated {} schedules ({} truncated), {} witnesses: all serially correct = {}",
        report.schedules,
        report.truncated,
        report.transactions_checked,
        report.ok()
    );
    if !report.ok() {
        std::process::exit(1);
    }
}

fn cmd_makespan(flags: &HashMap<String, String>) {
    let cfg = WorkloadConfig {
        top_level: 8,
        depth: 1,
        fanout: 2,
        accesses_per_leaf: 2,
        objects: 4,
        read_fraction: flag(flags, "read-frac", 0.8),
        zipf_theta: flag(flags, "zipf", 0.6),
        ..Default::default()
    };
    let mut moss = 0.0;
    let mut excl = 0.0;
    const N: u64 = 10;
    for seed in 0..N {
        let w = Workload::generate(&cfg, seed);
        moss += parallel_makespan(&w.spec, 100_000).speedup;
        excl += parallel_makespan(&w.exclusive_twin().spec, 100_000).speedup;
    }
    println!(
        "logical-time speedup over {N} workloads (read fraction {}):",
        cfg.read_fraction
    );
    println!("  Moss R/W locking : {:.2}x", moss / N as f64);
    println!("  exclusive locking: {:.2}x", excl / N as f64);
    println!("  advantage        : {:.2}x", moss / excl.max(1e-9));
}

fn cmd_demo() {
    use ntx_runtime::{RtConfig, TxManager};
    let mgr = TxManager::new(RtConfig::default());
    let acct = mgr.register("account", 100i64);
    let tx = mgr.begin();
    let child = tx.child().expect("child");
    child.write(&acct, |b| *b -= 30).expect("write");
    child.commit().expect("commit");
    println!(
        "child moved 30; world still sees {}",
        mgr.read_committed(&acct, |b| *b)
    );
    let risky = tx.child().expect("child");
    risky.write(&acct, |b| *b -= 1_000_000).expect("write");
    risky.abort();
    println!(
        "risky child aborted; tx sees {}",
        tx.read(&acct, |b| *b).expect("read")
    );
    tx.commit().expect("commit");
    println!("published: {}", mgr.read_committed(&acct, |b| *b));
    println!("stats: {:?}", mgr.stats());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    let flags = parse_flags(&args[1.min(args.len())..]);
    match cmd {
        "check" => cmd_check(&flags),
        "explore" => cmd_explore(&flags),
        "makespan" => cmd_makespan(&flags),
        "demo" => cmd_demo(),
        _ => {
            eprintln!(
                "usage: ntx <check|explore|makespan|demo> [--flag value …]\n\
                 (see the crate docs or src/bin/ntx.rs for flags)"
            );
            std::process::exit(2);
        }
    }
}
