//! `ntx` — command-line front end for the nested-transaction workspace.
//!
//! ```text
//! ntx check    [--seed N] [--runs K] [--top T] [--depth D] [--read-frac F]
//!              generate workloads, run them concurrently, machine-check
//!              Theorem 34 on every schedule
//! ntx explore  [--budget N]
//!              exhaustively enumerate a small system and check every
//!              schedule
//! ntx makespan [--read-frac F]
//!              logical-time speedup of Moss R/W locking vs exclusive
//!              locking on a generated workload
//! ntx fuzz     [--seed N | --seeds K] [--faults none|light|heavy]
//!              [--steps S] [--exclusive true] [--footnote8 true]
//!              [--snapshots false] [--async-ops false]
//!              deterministic fault-injection fuzzing of the runtime
//!              (lock-free snapshot reads included unless disabled, and a
//!              seeded half of reads/adds routed through the async waiter
//!              path unless --async-ops false), differentially checked
//!              against the Theorem 34 model; failing seeds are dumped to
//!              fuzz-failures/seed-N.log
//! ntx fuzz     --crash-points <all|pre-append,mid-commit,post-append,checkpoint>
//!              [--crash-pm P] [--wal-dir DIR] [--seed N | --seeds K]
//!              [--faults none|light|heavy] [--steps S]
//!              kill-and-recover mode: runs a durable workload, kills the
//!              simulated process at the selected WAL yield points, tears
//!              the log, recovers into a fresh manager, and checks the
//!              durability invariants differentially (committed prefix
//!              preserved, nothing uncommitted resurrected)
//! ntx demo     a quick nested-transaction session on the runtime
//! ```

use std::collections::HashMap;

use ntx_model::correctness::{check_exhaustive, check_serial_correctness};
use ntx_sim::workload::{Workload, WorkloadConfig};
use ntx_sim::{parallel_makespan, run_concurrent, DrivePolicy};

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            let value = args.get(i + 1).cloned().unwrap_or_default();
            flags.insert(name.to_owned(), value);
            i += 2;
        } else {
            i += 1;
        }
    }
    flags
}

fn flag<T: std::str::FromStr>(flags: &HashMap<String, String>, name: &str, default: T) -> T {
    flags
        .get(name)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn cmd_check(flags: &HashMap<String, String>) {
    let seed: u64 = flag(flags, "seed", 0);
    let runs: u64 = flag(flags, "runs", 20);
    let cfg = WorkloadConfig {
        top_level: flag(flags, "top", 3),
        depth: flag(flags, "depth", 2),
        fanout: 2,
        accesses_per_leaf: 1,
        objects: flag(flags, "objects", 3),
        read_fraction: flag(flags, "read-frac", 0.5),
        ..Default::default()
    };
    let mut witnesses = 0usize;
    let mut violations = 0usize;
    for i in 0..runs {
        let w = Workload::generate(&cfg, seed + i);
        let out = run_concurrent(&w.spec, seed + i, &DrivePolicy::default());
        let report = check_serial_correctness(&w.spec, out.schedule.as_slice());
        witnesses += report.transactions_checked;
        violations += report.violations.len();
        for v in &report.violations {
            eprintln!("violation (seed {}): {v}", seed + i);
        }
    }
    println!(
        "checked {runs} schedules ({} witnesses): {} violations",
        witnesses, violations
    );
    if violations > 0 {
        std::process::exit(1);
    }
    println!("Theorem 34 held on every schedule ✓");
}

fn cmd_explore(flags: &HashMap<String, String>) {
    use ntx_automata::explore::ExploreConfig;
    use ntx_model::{StdSemantics, SystemSpec};
    use ntx_tree::{TxTree, TxTreeBuilder};

    let budget: usize = flag(flags, "budget", 20_000);
    let mut b = TxTreeBuilder::new();
    let x = b.object("x");
    let t1 = b.internal(TxTree::ROOT, "t1");
    b.write(t1, "w", x, 1);
    let t2 = b.internal(TxTree::ROOT, "t2");
    b.read(t2, "r", x);
    let spec = SystemSpec::new(
        std::sync::Arc::new(b.build()),
        vec![StdSemantics::register(0)],
    );
    let report = check_exhaustive(
        &spec,
        ExploreConfig {
            max_depth: 64,
            max_schedules: budget,
        },
    );
    println!(
        "enumerated {} schedules ({} truncated), {} witnesses: all serially correct = {}",
        report.schedules,
        report.truncated,
        report.transactions_checked,
        report.ok()
    );
    if !report.ok() {
        std::process::exit(1);
    }
}

fn cmd_makespan(flags: &HashMap<String, String>) {
    let cfg = WorkloadConfig {
        top_level: 8,
        depth: 1,
        fanout: 2,
        accesses_per_leaf: 2,
        objects: 4,
        read_fraction: flag(flags, "read-frac", 0.8),
        zipf_theta: flag(flags, "zipf", 0.6),
        ..Default::default()
    };
    let mut moss = 0.0;
    let mut excl = 0.0;
    const N: u64 = 10;
    for seed in 0..N {
        let w = Workload::generate(&cfg, seed);
        moss += parallel_makespan(&w.spec, 100_000).speedup;
        excl += parallel_makespan(&w.exclusive_twin().spec, 100_000).speedup;
    }
    println!(
        "logical-time speedup over {N} workloads (read fraction {}):",
        cfg.read_fraction
    );
    println!("  Moss R/W locking : {:.2}x", moss / N as f64);
    println!("  exclusive locking: {:.2}x", excl / N as f64);
    println!("  advantage        : {:.2}x", moss / excl.max(1e-9));
}

/// Kill-and-recover fuzzing (`--crash-points …`): every seed crashes the
/// process at WAL yield points, recovers, and checks durability.
fn cmd_fuzz_crash(flags: &HashMap<String, String>, plan: ntx_sim::FaultPlan, plan_name: &str) {
    use ntx_sim::{fuzz_crash_run, CrashFuzzConfig, CrashPlan};

    let points = flags.get("crash-points").expect("checked by caller");
    let pm: u32 = flag(flags, "crash-pm", 60);
    let crash = CrashPlan::by_names(points, pm).unwrap_or_else(|| {
        eprintln!(
            "unknown crash points {points:?} (expected all or a comma list of \
             pre-append,mid-commit,post-append,checkpoint)"
        );
        std::process::exit(2);
    });
    let wal_dir = flags.get("wal-dir").cloned().unwrap_or_else(|| {
        std::env::temp_dir()
            .join(format!("ntx-crash-fuzz-{}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    });
    let base = CrashFuzzConfig {
        steps: flag(flags, "steps", 160),
        objects: flag(flags, "objects", 3),
        top_level: flag(flags, "top", 3),
        max_depth: flag(flags, "depth", 2),
        plan,
        crash,
        ..CrashFuzzConfig::new(0, wal_dir.clone().into())
    };
    let seeds: Vec<u64> = match flags.get("seed") {
        Some(s) => vec![s.parse().unwrap_or(0)],
        None => (0..flag(flags, "seeds", 128u64)).collect(),
    };
    let single = seeds.len() == 1;
    let mut failures = 0usize;
    let mut crashes = 0usize;
    for &seed in &seeds {
        let out = fuzz_crash_run(&CrashFuzzConfig {
            seed,
            ..base.clone()
        });
        crashes += usize::from(out.crashed);
        if single {
            println!("--- runtime log (seed {seed}) ---");
            print!("{}", out.log);
            println!("--- verdict ---");
            println!(
                "crashed={} crash_clock={} durable_ts={} recovered_ts={} redone={} failures={:?}",
                out.crashed,
                out.crash_clock,
                out.durable_ts,
                out.recovered_ts,
                out.redone,
                out.failures
            );
        }
        if !out.ok() {
            failures += 1;
            eprintln!(
                "seed {seed}: FAILED (replay: ntx fuzz --crash-points {points} --crash-pm {pm} \
                 --seed {seed} --faults {plan_name})"
            );
            let dir = std::path::Path::new("fuzz-failures");
            if std::fs::create_dir_all(dir).is_ok() {
                let mut dump = String::new();
                dump.push_str(&format!(
                    "seed: {seed}\nplan: {plan_name}\ncrash_points: {points}\ncrash_pm: {pm}\n\
                     crashed: {}\ncrash_clock: {}\ndurable_ts: {}\nrecovered_ts: {}\n\
                     failures: {:?}\nconformance: {:?} {:?} {:?}\n\n--- runtime log ---\n",
                    out.crashed,
                    out.crash_clock,
                    out.durable_ts,
                    out.recovered_ts,
                    out.failures,
                    out.report.schedule_error,
                    out.report.wellformed_error,
                    out.report.correctness_violations
                ));
                if !out.hb.ok() {
                    dump.push_str("--- happens-before violations ---\n");
                    dump.push_str(&out.hb.render_violations());
                }
                dump.push_str(&out.log);
                let _ = std::fs::write(dir.join(format!("crash-seed-{seed}.log")), dump);
            }
        }
    }
    println!(
        "crash-fuzzed {} seed(s) at points {points} (pm {pm}): {} crashed, {} failures",
        seeds.len(),
        crashes,
        failures
    );
    if failures > 0 {
        eprintln!("failing seeds dumped under fuzz-failures/");
        std::process::exit(1);
    }
    println!("every kill-and-recover execution preserved the committed prefix ✓");
}

fn cmd_fuzz(flags: &HashMap<String, String>) {
    use ntx_sim::fault::FaultPlan;
    use ntx_sim::fuzz::{fuzz_run, FuzzConfig};

    let plan_name = flags.get("faults").map_or("light", String::as_str);
    let plan = FaultPlan::by_name(plan_name).unwrap_or_else(|| {
        eprintln!("unknown fault plan {plan_name:?} (expected none|light|heavy)");
        std::process::exit(2);
    });
    if flags.contains_key("crash-points") {
        cmd_fuzz_crash(flags, plan, plan_name);
        return;
    }
    let base = FuzzConfig {
        steps: flag(flags, "steps", 100),
        objects: flag(flags, "objects", 3),
        top_level: flag(flags, "top", 3),
        max_depth: flag(flags, "depth", 3),
        plan,
        exclusive: flag(flags, "exclusive", false),
        footnote8: flag(flags, "footnote8", false),
        // Snapshot reads are on by default: the sweep exercises the
        // lock-free read path against the checker unless --snapshots false.
        snapshot_ops: flag(flags, "snapshots", true),
        // Async alternation likewise: a seeded half of reads/adds run
        // through the callback waiter variant unless --async-ops false.
        async_ops: flag(flags, "async-ops", true),
        ..Default::default()
    };
    // --seed N replays one seed verbosely; --seeds K sweeps 0..K.
    let seeds: Vec<u64> = match flags.get("seed") {
        Some(s) => vec![s.parse().unwrap_or(0)],
        None => (0..flag(flags, "seeds", 64u64)).collect(),
    };
    let single = seeds.len() == 1;
    let mut failures = 0usize;
    let mut total_faults = 0usize;
    for &seed in &seeds {
        let out = fuzz_run(&FuzzConfig { seed, ..base });
        total_faults += out.faults_applied;
        if single {
            println!("--- runtime log (seed {seed}) ---");
            print!("{}", out.log);
            println!("--- verdict ---");
            println!(
                "events={} faults={} schedule_error={:?} wellformed_error={:?} violations={:?}",
                out.trace.events.len(),
                out.faults_applied,
                out.report.schedule_error,
                out.report.wellformed_error,
                out.report.correctness_violations
            );
            println!(
                "hb: {} events, {}/{} waits resolved, {} grants checked, {} advances, \
                 {} violations",
                out.hb.events,
                out.hb.waits_resolved,
                out.hb.waits,
                out.hb.grants_checked,
                out.hb.ts_advances,
                out.hb.violations.len()
            );
            print!("{}", out.hb.render_violations());
        }
        if !out.ok() {
            failures += 1;
            eprintln!("seed {seed}: FAILED (replay: ntx fuzz --seed {seed} --faults {plan_name})");
            let dir = std::path::Path::new("fuzz-failures");
            if std::fs::create_dir_all(dir).is_ok() {
                let mut dump = String::new();
                dump.push_str(&format!(
                    "seed: {seed}\nplan: {plan_name}\nschedule_error: {:?}\n\
                     wellformed_error: {:?}\nviolations: {:?}\n",
                    out.report.schedule_error,
                    out.report.wellformed_error,
                    out.report.correctness_violations
                ));
                if !out.hb.ok() {
                    dump.push_str("\n--- happens-before violations ---\n");
                    dump.push_str(&out.hb.render_violations());
                }
                dump.push_str("\n--- runtime log ---\n");
                dump.push_str(&out.log);
                let _ = std::fs::write(dir.join(format!("seed-{seed}.log")), dump);
            }
        }
    }
    println!(
        "fuzzed {} seed(s), plan {plan_name}: {} injected faults, {} conformance failures",
        seeds.len(),
        total_faults,
        failures
    );
    if failures > 0 {
        eprintln!("failing seeds dumped under fuzz-failures/");
        std::process::exit(1);
    }
    println!("every faulty execution conformed to the model ✓");
}

fn cmd_demo() {
    use ntx_runtime::{RtConfig, TxManager};
    let mgr = TxManager::new(RtConfig::default());
    let acct = mgr.register("account", 100i64);
    let tx = mgr.begin();
    let child = tx.child().expect("child");
    child.write(&acct, |b| *b -= 30).expect("write");
    child.commit().expect("commit");
    println!(
        "child moved 30; world still sees {}",
        mgr.read_committed(&acct, |b| *b)
    );
    let risky = tx.child().expect("child");
    risky.write(&acct, |b| *b -= 1_000_000).expect("write");
    risky.abort();
    println!(
        "risky child aborted; tx sees {}",
        tx.read(&acct, |b| *b).expect("read")
    );
    tx.commit().expect("commit");
    println!("published: {}", mgr.read_committed(&acct, |b| *b));
    println!("stats: {:?}", mgr.stats());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    let flags = parse_flags(&args[1.min(args.len())..]);
    match cmd {
        "check" => cmd_check(&flags),
        "explore" => cmd_explore(&flags),
        "makespan" => cmd_makespan(&flags),
        "fuzz" => cmd_fuzz(&flags),
        "demo" => cmd_demo(),
        _ => {
            eprintln!(
                "usage: ntx <check|explore|makespan|fuzz|demo> [--flag value …]\n\
                 (see the crate docs or src/bin/ntx.rs for flags)"
            );
            std::process::exit(2);
        }
    }
}
