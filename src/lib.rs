//! Umbrella crate re-exporting the nested-transaction workspace.
pub use ntx_automata as automata;
pub use ntx_conform as conform;
pub use ntx_model as model;
pub use ntx_runtime as runtime;
pub use ntx_sim as sim;
pub use ntx_tree as tree;

/// The README's code examples, compiled and run as doctests.
#[doc = include_str!("../README.md")]
mod _readme_doctests {}
