//! Concurrent banking: many threads transfer money between accounts using
//! nested transactions, with deadlock-driven retries confined to the failed
//! subtransaction. The invariant — total money is conserved — is checked at
//! the end, and the run is repeated under all three locking disciplines to
//! show their behavioural differences.
//!
//! Run with: `cargo run --example banking`

use std::sync::Arc;
use std::time::{Duration, Instant};

use ntx_runtime::{LockMode, RtConfig, TxError, TxManager};

const ACCOUNTS: usize = 16;
const THREADS: usize = 8;
const TRANSFERS_PER_THREAD: usize = 200;
const OPENING_BALANCE: i64 = 1_000;

fn run(mode: LockMode) -> (i64, Duration, ntx_runtime::StatsSnapshot) {
    let mgr = TxManager::new(RtConfig {
        mode,
        wait_timeout: Duration::from_secs(5),
        ..Default::default()
    });
    let accounts: Arc<Vec<_>> = Arc::new(
        (0..ACCOUNTS)
            .map(|i| mgr.register(format!("acct{i}"), OPENING_BALANCE))
            .collect(),
    );

    let start = Instant::now();
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let mgr = mgr.clone();
            let accounts = accounts.clone();
            std::thread::spawn(move || {
                // Cheap deterministic PRNG per thread.
                let mut state = (t as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15);
                let mut rng = move || {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    state
                };
                for _ in 0..TRANSFERS_PER_THREAD {
                    let from = (rng() as usize) % ACCOUNTS;
                    let mut to = (rng() as usize) % ACCOUNTS;
                    if to == from {
                        to = (to + 1) % ACCOUNTS;
                    }
                    let amount = (rng() % 50) as i64 + 1;
                    // Retry the whole top-level transfer until it commits.
                    'retry: loop {
                        let tx = mgr.begin();
                        // The debit and credit run as one nested child so a
                        // deadlock rolls back both sides together, then the
                        // child is retried without redoing anything else the
                        // top-level transaction may have done.
                        let moved = tx.retry_child(10, |c| {
                            let available = c.read(&accounts[from], |b| *b)?;
                            let amt = amount.min(available.max(0));
                            c.write(&accounts[from], |b| *b -= amt)?;
                            c.write(&accounts[to], |b| *b += amt)?;
                            Ok(amt)
                        });
                        match moved {
                            Ok(_) => match tx.commit() {
                                Ok(()) => break 'retry,
                                Err(_) => continue 'retry,
                            },
                            Err(TxError::Deadlock | TxError::Timeout | TxError::Doomed) => {
                                tx.abort();
                                continue 'retry;
                            }
                            Err(e) => panic!("unexpected error: {e}"),
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let elapsed = start.elapsed();
    let total: i64 = accounts.iter().map(|a| mgr.read_committed(a, |b| *b)).sum();
    (total, elapsed, mgr.stats())
}

fn main() {
    println!("{THREADS} threads x {TRANSFERS_PER_THREAD} transfers over {ACCOUNTS} accounts\n");
    for mode in [LockMode::MossRW, LockMode::Exclusive, LockMode::Flat2PL] {
        let (total, elapsed, stats) = run(mode);
        let expected = (ACCOUNTS as i64) * OPENING_BALANCE;
        assert_eq!(total, expected, "money not conserved under {mode:?}!");
        println!(
            "{mode:?}: conserved {total} ({}ms)  commits={} aborts={} deadlocks={} waits={}",
            elapsed.as_millis(),
            stats.commits,
            stats.aborts,
            stats.deadlocks,
            stats.waits,
        );
    }
    println!("\ninvariant held under every locking discipline ✓");
}
