//! Machine-check Theorem 34 of the paper on a live system.
//!
//! Builds a small nested-transaction system in the *formal model*
//! (`ntx-model`), runs it concurrently under Moss' locking, constructs the
//! Lemma 33 serial witness for every non-orphan transaction, verifies the
//! witnesses, and prints one rearrangement so you can see the proof at
//! work. Then it enumerates EVERY schedule of a tiny system exhaustively.
//!
//! Run with: `cargo run --example model_check`

use std::sync::Arc;

use ntx_automata::explore::ExploreConfig;
use ntx_model::correctness::{check_exhaustive, check_serial_correctness};
use ntx_model::serializer::Serializer;
use ntx_model::{StdSemantics, SystemSpec};
use ntx_sim::{run_concurrent, DrivePolicy};
use ntx_tree::{TxTree, TxTreeBuilder};

fn main() {
    // T0 ── transfer ── {withdraw(x), deposit(y)}
    //    └─ audit    ── {read(x), read(y)}
    let mut b = TxTreeBuilder::new();
    let x = b.object("x");
    let y = b.object("y");
    let transfer = b.internal(TxTree::ROOT, "transfer");
    b.access(transfer, "withdraw", x, ntx_tree::AccessKind::Write, 1, 30);
    b.access(transfer, "deposit", y, ntx_tree::AccessKind::Write, 0, 30);
    let audit = b.internal(TxTree::ROOT, "audit");
    b.read(audit, "read-x", x);
    b.read(audit, "read-y", y);
    let tree = Arc::new(b.build());
    println!("system type:\n{}", tree.render());

    let spec = SystemSpec::new(
        tree.clone(),
        vec![StdSemantics::account(100), StdSemantics::account(0)],
    );

    // --- 1. one concurrent run, witnessed and verified -----------------
    let out = run_concurrent(&spec, 42, &DrivePolicy::default());
    println!("concurrent schedule ({} events):", out.schedule.len());
    for (i, a) in out.schedule.iter().enumerate() {
        println!("  {i:3}  {a:?}");
    }

    let mut ser = Serializer::new(tree.clone());
    ser.absorb_all(out.schedule.as_slice());
    println!("\nserial witness for T0 (the external world):");
    for a in ser.witness(TxTree::ROOT).expect("root always tracked") {
        println!("       {a:?}");
    }

    let report = check_serial_correctness(&spec, out.schedule.as_slice());
    println!(
        "\nTheorem 34 on this run: {} transactions verified, {} violations",
        report.transactions_checked,
        report.violations.len()
    );
    assert!(report.ok());

    // --- 2. many seeded runs --------------------------------------------
    let mut checked = 0usize;
    for seed in 0..200 {
        let out = run_concurrent(&spec, seed, &DrivePolicy::default());
        let report = check_serial_correctness(&spec, out.schedule.as_slice());
        assert!(
            report.ok(),
            "violation at seed {seed}: {:?}",
            report.violations
        );
        checked += report.transactions_checked;
    }
    println!("200 random runs: {checked} witnesses verified, 0 violations");

    // --- 3. exhaustive small-scope check --------------------------------
    let mut tiny = TxTreeBuilder::new();
    let z = tiny.object("z");
    let t1 = tiny.internal(TxTree::ROOT, "t1");
    tiny.write(t1, "w", z, 7);
    let t2 = tiny.internal(TxTree::ROOT, "t2");
    tiny.read(t2, "r", z);
    let tiny_spec = SystemSpec::new(Arc::new(tiny.build()), vec![StdSemantics::register(0)]);
    let ex = check_exhaustive(
        &tiny_spec,
        ExploreConfig {
            max_depth: 24,
            max_schedules: 20_000,
        },
    );
    println!(
        "exhaustive: {} schedules enumerated ({} truncated), {} witnesses — all serially correct: {}",
        ex.schedules,
        ex.truncated,
        ex.transactions_checked,
        ex.ok()
    );
    assert!(ex.ok());
}
