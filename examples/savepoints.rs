//! Savepoints — the paper's introduction cites System R, where "a recovery
//! block can be aborted and the transaction restarted at the last
//! savepoint", as the primitive ancestor of nested transactions. This
//! example uses the runtime's [`SavepointScope`] (savepoints as sugar over
//! child transactions).
//!
//! A batch loader ingests records into an index; every `BATCH` records it
//! takes a savepoint. When a poison record aborts the current recovery
//! block, only the records since the last savepoint are lost and retried
//! with the poison filtered out — the classic recovery-block pattern.
//!
//! Run with: `cargo run --example savepoints`

use std::collections::BTreeMap;

use ntx_runtime::{ObjRef, RtConfig, SavepointScope, Tx, TxError, TxManager};

const BATCH: usize = 4;

/// Load `records` into the index, poison-tolerant, using savepoints.
/// Returns (records loaded, savepoints taken, rollbacks performed).
fn load(
    tx: &Tx,
    index: &ObjRef<BTreeMap<i64, String>>,
    records: &[(i64, &str)],
) -> Result<(usize, usize, usize), TxError> {
    let mut sp = SavepointScope::new(tx)?;
    let mut loaded = 0usize;

    for chunk in records.chunks(BATCH) {
        let mut skip_poison = false;
        loop {
            let mut inserted = 0usize;
            let mut poisoned_batch = false;
            for &(key, val) in chunk {
                let poisoned = val.contains('\u{0}') || key < 0;
                if poisoned && !skip_poison {
                    poisoned_batch = true;
                    break;
                }
                if poisoned {
                    continue; // filtered on retry
                }
                sp.write(index, |ix| ix.insert(key, val.to_owned()))?;
                inserted += 1;
            }
            if poisoned_batch {
                sp.rollback()?; // ROLLBACK TO SAVEPOINT
                skip_poison = true;
            } else {
                sp.savepoint()?; // work since last savepoint is now safe
                loaded += inserted;
                break;
            }
        }
    }
    let (sps, rbs) = (sp.savepoints(), sp.rollbacks());
    sp.finish()?;
    Ok((loaded, sps, rbs))
}

fn main() {
    let mgr = TxManager::new(RtConfig::default());
    let index = mgr.register("index", BTreeMap::<i64, String>::new());

    let records: Vec<(i64, &str)> = vec![
        (1, "alpha"),
        (2, "beta"),
        (3, "gamma"),
        (4, "delta"),
        (5, "epsilon"),
        (-6, "POISON"), // aborts its batch
        (7, "eta"),
        (8, "theta"),
        (9, "iota"),
        (10, "kappa"),
    ];

    let tx = mgr.begin();
    let (loaded, savepoints, rollbacks) = load(&tx, &index, &records).unwrap();
    // Nothing is published yet — savepoints are internal structure.
    assert_eq!(mgr.read_committed(&index, |ix| ix.len()), 0);
    tx.commit().unwrap();

    let final_len = mgr.read_committed(&index, |ix| ix.len());
    println!("records offered : {}", records.len());
    println!("records loaded  : {loaded}");
    println!("savepoints taken: {savepoints}");
    println!("batch rollbacks : {rollbacks}");
    println!("index size      : {final_len}");

    assert_eq!(loaded, 9, "one poison record dropped");
    assert_eq!(final_len, 9);
    assert_eq!(rollbacks, 1, "only the poisoned batch rolled back");
    assert!(mgr.read_committed(&index, |ix| ix.contains_key(&5)));
    assert!(!mgr.read_committed(&index, |ix| ix.contains_key(&-6)));
    println!("\nrollback cost was one batch, not the whole load ✓");
}
