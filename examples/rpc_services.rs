//! Nested remote-procedure-call services — the workload that motivated
//! nested transactions in Argus (the paper's introduction: "providing a
//! service will often require using other services, [so] the transactions
//! that implement services ought to be nested").
//!
//! A travel-booking *service* calls a flight service and a hotel service;
//! each call is a subtransaction. When the preferred hotel is full the
//! hotel subtransaction aborts **independently** — its reservation rolls
//! back — and the booking service falls back to another hotel without
//! disturbing the already-booked flight. That partial-recovery pattern is
//! exactly what flat transactions cannot do.
//!
//! Run with: `cargo run --example rpc_services`

use ntx_runtime::{ObjRef, RtConfig, Tx, TxError, TxManager};

#[derive(Clone, Debug, Default)]
struct Inventory {
    free: i64,
    reservations: Vec<String>,
}

struct Services {
    flights: ObjRef<Inventory>,
    hotel_plaza: ObjRef<Inventory>,
    hotel_budget: ObjRef<Inventory>,
    ledger: ObjRef<i64>,
}

/// "Flight service": reserve one seat, debit the ledger.
fn book_flight(tx: &Tx, s: &Services, who: &str) -> Result<(), TxError> {
    tx.run_child(|c| {
        let ok = c.write(&s.flights, |inv| {
            if inv.free > 0 {
                inv.free -= 1;
                inv.reservations.push(who.to_owned());
                true
            } else {
                false
            }
        })?;
        if !ok {
            return Err(TxError::Doomed); // abort this subtransaction only
        }
        c.write(&s.ledger, |l| *l += 120)?;
        Ok(())
    })
}

/// "Hotel service": reserve one room at the given hotel.
fn book_hotel(tx: &Tx, hotel: &ObjRef<Inventory>, s: &Services, who: &str) -> Result<(), TxError> {
    tx.run_child(|c| {
        let ok = c.write(hotel, |inv| {
            if inv.free > 0 {
                inv.free -= 1;
                inv.reservations.push(who.to_owned());
                true
            } else {
                false
            }
        })?;
        if !ok {
            return Err(TxError::Doomed);
        }
        c.write(&s.ledger, |l| *l += 80)?;
        Ok(())
    })
}

/// "Travel service": one atomic trip = flight + (plaza hotel, else budget
/// hotel). Any unrecoverable failure aborts the whole trip.
fn book_trip(mgr: &TxManager, s: &Services, who: &str) -> Result<String, TxError> {
    let tx = mgr.begin();
    book_flight(&tx, s, who)?;
    // Preferred hotel first; on failure the *subtransaction* rolled back,
    // so falling back leaves no partial hotel state behind.
    let hotel = match book_hotel(&tx, &s.hotel_plaza, s, who) {
        Ok(()) => "plaza",
        Err(_) => {
            book_hotel(&tx, &s.hotel_budget, s, who)?;
            "budget"
        }
    };
    tx.commit()?;
    Ok(hotel.to_owned())
}

fn main() {
    let mgr = TxManager::new(RtConfig::default());
    let s = Services {
        flights: mgr.register(
            "flights",
            Inventory {
                free: 10,
                reservations: vec![],
            },
        ),
        hotel_plaza: mgr.register(
            "plaza",
            Inventory {
                free: 2,
                reservations: vec![],
            },
        ),
        hotel_budget: mgr.register(
            "budget",
            Inventory {
                free: 10,
                reservations: vec![],
            },
        ),
        ledger: mgr.register("ledger", 0i64),
    };

    // Five travellers; the plaza only has two rooms, so three fall back.
    for who in ["ada", "grace", "edsger", "barbara", "leslie"] {
        match book_trip(&mgr, &s, who) {
            Ok(hotel) => println!("{who:8} booked: flight + {hotel}"),
            Err(e) => println!("{who:8} failed: {e}"),
        }
    }

    let plaza = mgr.read_committed(&s.hotel_plaza, |i| i.clone());
    let budget = mgr.read_committed(&s.hotel_budget, |i| i.clone());
    let flights = mgr.read_committed(&s.flights, |i| i.clone());
    let ledger = mgr.read_committed(&s.ledger, |l| *l);

    println!(
        "\nplaza rooms left:  {} ({:?})",
        plaza.free, plaza.reservations
    );
    println!(
        "budget rooms left: {} ({:?})",
        budget.free, budget.reservations
    );
    println!("flight seats left: {}", flights.free);
    println!("ledger total:      {ledger}");

    // Every committed trip purchased exactly one flight (120) + one hotel
    // (80); failed hotel attempts must have left NO ledger residue.
    assert_eq!(plaza.reservations.len(), 2);
    assert_eq!(budget.reservations.len(), 3);
    assert_eq!(flights.reservations.len(), 5);
    assert_eq!(ledger, 5 * (120 + 80));
    println!("\nno partial bookings leaked ✓");
}
