//! Quickstart: the nested-transaction runtime in five minutes.
//!
//! Run with: `cargo run --example quickstart`

use ntx_runtime::{RtConfig, TxError, TxManager};

fn main() -> Result<(), TxError> {
    // A manager owns the shared objects and hands out transactions.
    let mgr = TxManager::new(RtConfig::default());
    let checking = mgr.register("checking", 100i64);
    let savings = mgr.register("savings", 50i64);
    let audit = mgr.register("audit-log", Vec::<String>::new());

    // ---------------------------------------------------------------
    // 1. A top-level transaction with nested subtransactions.
    // ---------------------------------------------------------------
    let tx = mgr.begin();

    // Subtransaction: move 30 from checking to savings atomically.
    let transfer = tx.child()?;
    transfer.write(&checking, |b| *b -= 30)?;
    transfer.write(&savings, |b| *b += 30)?;
    transfer.commit()?; // locks + versions inherited by `tx`

    // The parent sees the transferred balances...
    assert_eq!(tx.read(&checking, |b| *b)?, 70);
    assert_eq!(tx.read(&savings, |b| *b)?, 80);
    // ...but the outside world still sees the committed state.
    assert_eq!(mgr.read_committed(&checking, |b| *b), 100);

    // ---------------------------------------------------------------
    // 2. Independent subtransaction abort: only the child rolls back.
    // ---------------------------------------------------------------
    let risky = tx.child()?;
    risky.write(&checking, |b| *b -= 1_000_000)?; // oops
    risky.abort(); // checking reverts to 70 — the parent's work survives

    assert_eq!(tx.read(&checking, |b| *b)?, 70);

    // ---------------------------------------------------------------
    // 3. run_child: commit on Ok, abort on Err.
    // ---------------------------------------------------------------
    let result: Result<i64, TxError> = tx.run_child(|c| {
        let bal = c.read(&checking, |b| *b)?;
        if bal < 80 {
            c.write(&audit, |log| log.push(format!("low balance: {bal}")))?;
        }
        Ok(bal)
    });
    println!("checking balance inside tx: {}", result?);

    // ---------------------------------------------------------------
    // 4. Top-level commit publishes everything at once.
    // ---------------------------------------------------------------
    tx.commit()?;
    assert_eq!(mgr.read_committed(&checking, |b| *b), 70);
    assert_eq!(mgr.read_committed(&savings, |b| *b), 80);
    assert_eq!(mgr.read_committed(&audit, |log| log.len()), 1);

    println!("final checking = {}", mgr.read_committed(&checking, |b| *b));
    println!("final savings  = {}", mgr.read_committed(&savings, |b| *b));
    println!(
        "audit entries  = {:?}",
        mgr.read_committed(&audit, |l| l.clone())
    );
    println!("stats          = {:?}", mgr.stats());
    Ok(())
}
