//! Offline stand-in for the `criterion` crate (API-compatible subset).
//!
//! The workspace builds without crates.io access, so `cargo bench` runs on
//! this miniature harness: it times each benchmark with [`std::time::Instant`]
//! over `sample_size` samples and prints median/mean ns per iteration. No
//! statistical analysis, plots, or baselines — just stable, comparable
//! numbers.
//!
//! Mode selection mirrors criterion: `cargo bench` passes `--bench` on the
//! command line and gets real measurements; `cargo test --benches` passes no
//! flag and each benchmark runs exactly once as a smoke test.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export point for the classic `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group (recorded, shown in output).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; `iter` runs and times the workload.
pub struct Bencher<'a> {
    samples: usize,
    measurement: &'a mut Option<Sample>,
}

#[derive(Clone, Copy, Debug)]
struct Sample {
    total: Duration,
    iters: u64,
}

impl Bencher<'_> {
    /// Time `routine`, running it enough times for a stable estimate.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up call; also serves as the single "test mode" execution.
        black_box(routine());
        if self.samples == 0 {
            return;
        }
        // Calibrate the per-iteration cost so each sample spends ~1ms.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(20));
        let per_sample =
            (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;

        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            total += start.elapsed();
            iters += per_sample;
        }
        *self.measurement = Some(Sample { total, iters });
    }
}

/// Top-level harness handle.
pub struct Criterion {
    sample_size: usize,
    measure: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measure: false,
        }
    }
}

impl Criterion {
    /// Set how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Read the command line: `--bench` (what `cargo bench` passes) enables
    /// measurement; otherwise run each benchmark once (test mode).
    pub fn configure_from_args(mut self) -> Self {
        self.measure = std::env::args().any(|a| a == "--bench");
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: impl fmt::Display, mut f: F)
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let samples = if self.measure { self.sample_size } else { 0 };
        run_one(&name.to_string(), samples, None, |b| f(b));
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Record the work per iteration (shown alongside timings).
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n;
        self
    }

    /// Benchmark `f` with a borrowed input parameter.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let samples = if self.criterion.measure {
            self.criterion.sample_size
        } else {
            0
        };
        run_one(
            &format!("{}/{}", self.name, id),
            samples,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Benchmark a closure with no explicit input.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let samples = if self.criterion.measure {
            self.criterion.sample_size
        } else {
            0
        };
        run_one(
            &format!("{}/{}", self.name, id),
            samples,
            self.throughput,
            |b| f(b),
        );
        self
    }

    /// Close the group (kept for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F>(label: &str, samples: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher<'_>),
{
    let mut measurement = None;
    let mut bencher = Bencher {
        samples,
        measurement: &mut measurement,
    };
    f(&mut bencher);
    match measurement {
        None => println!("bench {label}: ok (test mode)"),
        Some(s) => {
            let ns_per_iter = s.total.as_nanos() as f64 / s.iters.max(1) as f64;
            let extra = match throughput {
                Some(Throughput::Elements(n)) => {
                    let per_sec = n as f64 * 1e9 / ns_per_iter;
                    format!("  ({per_sec:.0} elem/s)")
                }
                Some(Throughput::Bytes(n)) => {
                    let per_sec = n as f64 * 1e9 / ns_per_iter;
                    format!("  ({per_sec:.0} B/s)")
                }
                None => String::new(),
            };
            println!(
                "bench {label}: {ns_per_iter:.1} ns/iter over {} iters{extra}",
                s.iters
            );
        }
    }
}

/// Declare a benchmark group the way criterion does.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declare the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("smoke");
        g.throughput(Throughput::Elements(4));
        g.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
        c.bench_function("standalone", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion::default().sample_size(5);
        sample_bench(&mut c); // measure = false -> each closure runs once
    }

    #[test]
    fn measured_mode_times() {
        let mut c = Criterion {
            sample_size: 3,
            measure: true,
        };
        sample_bench(&mut c);
    }
}
