//! Offline stand-in for the `proptest` crate (API-compatible subset).
//!
//! The workspace builds without crates.io access, so property tests run on
//! this miniature engine instead. It keeps the parts that matter for the
//! repo's test suite:
//!
//! - the `proptest!` macro (with optional `#![proptest_config(..)]` header),
//!   `prop_assert!`, `prop_assert_eq!`, `prop_assume!`;
//! - range, tuple, `any::<T>()`, `Just`, and [`collection::vec`] strategies;
//! - deterministic per-case seeds, greedy shrinking of failing inputs, and
//!   failure persistence to `proptest-regressions/<file>.txt` so failures
//!   replay first on the next run (the `cc <test> <seed>` lines are
//!   committed like a normal proptest regression corpus).
//!
//! Differences from real proptest: case seeds are derived deterministically
//! from the test name rather than from OS entropy (CI runs are exactly
//! reproducible), and `prop_map` strategies do not shrink.

/// Deterministic RNG used for value generation (SplitMix64).
pub mod test_runner {
    use super::strategy::Strategy;
    use std::io::Write as _;
    use std::path::PathBuf;

    /// Generation RNG: SplitMix64, seeded per case.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed a fresh generator.
        pub fn new(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Runner configuration (`ProptestConfig` in the prelude).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
        /// Cap on shrink iterations once a failure is found.
        pub max_shrink_iters: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 256,
                max_shrink_iters: 1024,
            }
        }
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config {
                cases,
                ..Config::default()
            }
        }
    }

    fn hash_name(name: &str) -> u64 {
        // FNV-1a; stable across runs and platforms.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    fn regression_path(source_file: &str) -> PathBuf {
        let stem = std::path::Path::new(source_file)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("unknown");
        let root = std::env::var("CARGO_MANIFEST_DIR").unwrap_or_else(|_| ".".into());
        PathBuf::from(root)
            .join("proptest-regressions")
            .join(format!("{stem}.txt"))
    }

    fn load_regressions(source_file: &str, test: &str) -> Vec<u64> {
        let Ok(text) = std::fs::read_to_string(regression_path(source_file)) else {
            return Vec::new();
        };
        text.lines()
            .filter_map(|line| {
                let mut parts = line.split_whitespace();
                match (parts.next(), parts.next(), parts.next()) {
                    (Some("cc"), Some(name), Some(seed)) if name == test => {
                        u64::from_str_radix(seed.trim_start_matches("0x"), 16).ok()
                    }
                    _ => None,
                }
            })
            .collect()
    }

    fn persist_regression(source_file: &str, test: &str, seed: u64) {
        let path = regression_path(source_file);
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        if load_regressions(source_file, test).contains(&seed) {
            return;
        }
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        {
            let _ = writeln!(f, "cc {test} {seed:#018x}");
        }
    }

    /// One test case: returns `Err(reason)` on property failure.
    pub type CaseResult = Result<(), String>;

    fn shrink_failure<S, F>(
        strat: &S,
        cfg: &Config,
        mut value: S::Value,
        mut reason: String,
        run: &F,
    ) -> (S::Value, String, u32)
    where
        S: Strategy,
        F: Fn(&S::Value) -> CaseResult,
    {
        let mut iters = 0u32;
        let mut shrunk = 0u32;
        'outer: while iters < cfg.max_shrink_iters {
            for candidate in strat.shrink(&value) {
                iters += 1;
                if let Err(e) = run(&candidate) {
                    value = candidate;
                    reason = e;
                    shrunk += 1;
                    continue 'outer;
                }
                if iters >= cfg.max_shrink_iters {
                    break;
                }
            }
            break;
        }
        (value, reason, shrunk)
    }

    /// Drive one property: replay persisted regressions, then fresh cases.
    /// Panics (test failure) on the first shrunk counterexample.
    pub fn run_proptest<S, F>(cfg: &Config, source_file: &str, test: &str, strat: &S, run: F)
    where
        S: Strategy,
        F: Fn(&S::Value) -> CaseResult,
    {
        let base = hash_name(test);
        let regressions = load_regressions(source_file, test);
        let fresh = (0..cfg.cases as u64).map(|i| base.wrapping_add(i.wrapping_mul(0x9E37_79B9)));
        for (replayed, seed) in regressions
            .into_iter()
            .map(|s| (true, s))
            .chain(fresh.map(|s| (false, s)))
        {
            let value = strat.generate(&mut TestRng::new(seed));
            if let Err(reason) = run(&value) {
                let (min, min_reason, shrunk) = shrink_failure(strat, cfg, value, reason, &run);
                if !replayed {
                    persist_regression(source_file, test, seed);
                }
                panic!(
                    "proptest property `{test}` failed (seed {seed:#x}{}, shrunk {shrunk}x)\n  input: {min:?}\n  cause: {min_reason}",
                    if replayed { ", replayed from corpus" } else { "" }
                );
            }
        }
    }
}

/// Strategy trait and combinators.
pub mod strategy {
    use super::test_runner::TestRng;
    use std::fmt;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// Generates (and shrinks) values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value: Clone + fmt::Debug;

        /// Produce one value from seeded randomness.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Simpler candidate values derived from a failing `value`.
        /// Candidates must be "smaller"; the runner greedily descends.
        fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
            Vec::new()
        }

        /// Map generated values through `f` (no shrinking across the map).
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            O: Clone + fmt::Debug,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end.wrapping_sub(self.start) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }

                fn shrink(&self, value: &$t) -> Vec<$t> {
                    let mut out = Vec::new();
                    // Prefer the low bound, then the midpoint toward it.
                    if *value != self.start {
                        out.push(self.start);
                        let mid = self.start.wrapping_add(value.wrapping_sub(self.start) / 2);
                        if mid != self.start && mid != *value {
                            out.push(mid);
                        }
                        let dec = value.wrapping_sub(1);
                        if dec != self.start && !out.contains(&dec) {
                            out.push(dec);
                        }
                    }
                    out
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = end.wrapping_sub(start) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    start.wrapping_add(rng.below(span + 1) as $t)
                }

                fn shrink(&self, value: &$t) -> Vec<$t> {
                    (*self.start()..value.wrapping_add(if *value == <$t>::MAX { 0 } else { 1 }))
                        .shrink(value)
                }
            }
        )*};
    }

    int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }

        fn shrink(&self, value: &f64) -> Vec<f64> {
            if *value == self.start {
                return Vec::new();
            }
            let mid = self.start + (value - self.start) / 2.0;
            if mid == *value {
                vec![self.start]
            } else {
                vec![self.start, mid]
            }
        }
    }

    /// Strategy for "any value of `T`" — see [`any`].
    pub struct Any<T>(PhantomData<T>);

    /// Types usable with [`any`].
    pub trait Arbitrary: Clone + fmt::Debug + Sized {
        /// Generate an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;

        /// Shrink candidates (same contract as [`Strategy::shrink`]).
        fn arbitrary_shrink(&self) -> Vec<Self> {
            Vec::new()
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }

        fn arbitrary_shrink(&self) -> Vec<bool> {
            if *self {
                vec![false]
            } else {
                Vec::new()
            }
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }

                fn arbitrary_shrink(&self) -> Vec<$t> {
                    if *self == 0 {
                        Vec::new()
                    } else {
                        vec![0, *self / 2]
                    }
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }

        fn shrink(&self, value: &T) -> Vec<T> {
            value.arbitrary_shrink()
        }
    }

    /// The `any::<T>()` strategy constructor.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    /// Always produces a clone of one fixed value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone + fmt::Debug> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        O: Clone + fmt::Debug,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident / $v:ident / $i:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }

                fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                    let mut out = Vec::new();
                    $(
                        for candidate in self.$i.shrink(&value.$i) {
                            let mut next = value.clone();
                            next.$i = candidate;
                            out.push(next);
                        }
                    )+
                    out
                }
            }
        )*};
    }

    tuple_strategy! {
        (A/a/0);
        (A/a/0, B/b/1);
        (A/a/0, B/b/1, C/c/2);
        (A/a/0, B/b/1, C/c/2, D/d/3);
        (A/a/0, B/b/1, C/c/2, D/d/3, E/e/4);
        (A/a/0, B/b/1, C/c/2, D/d/3, E/e/4, F/f/5);
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Length bounds for generated collections.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        /// Minimum length (inclusive).
        pub min: usize,
        /// Maximum length (exclusive).
        pub max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    /// Strategy producing `Vec<S::Value>` with length in the size range.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min
                + if span == 0 {
                    0
                } else {
                    rng.below(span) as usize
                };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }

        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let mut out = Vec::new();
            // Structural shrinks first: shorter vectors find smaller
            // counterexamples much faster than element-wise descent.
            if value.len() > self.size.min {
                let half = self.size.min.max(value.len() / 2);
                if half < value.len() {
                    out.push(value[..half].to_vec());
                }
                out.push(value[..value.len() - 1].to_vec());
                if value.len() > 1 {
                    out.push(value[1..].to_vec());
                }
            }
            for (i, item) in value.iter().enumerate() {
                for candidate in self.element.shrink(item) {
                    let mut next = value.clone();
                    next[i] = candidate;
                    out.push(next);
                }
            }
            out
        }
    }
}

pub use strategy::{any, Just};

/// Everything a property test normally imports.
pub mod prelude {
    pub use super::collection;
    pub use super::strategy::{any, Just, Strategy};
    pub use super::test_runner::Config as ProptestConfig;
    pub use super::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", ::std::stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)*));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{:?}` == `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "{}: `{:?}` != `{:?}`",
            ::std::format!($($fmt)*),
            l,
            r
        );
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
}

/// Skip the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Define property tests. Supports an optional
/// `#![proptest_config(expr)]` header and any number of
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::Config = $cfg;
            let __strategy = ( $($strat,)+ );
            $crate::test_runner::run_proptest(
                &__cfg,
                ::std::file!(),
                ::std::stringify!($name),
                &__strategy,
                |__values| {
                    let ( $($arg,)+ ) = ::std::clone::Clone::clone(__values);
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[allow(missing_docs)]
#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn addition_commutes(a in 0i64..100, b in 0i64..100) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn vec_lengths_respected(v in collection::vec(0usize..5, 2..6)) {
            prop_assert!((2..6).contains(&v.len()), "len {}", v.len());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn mixed_tuple(flags in collection::vec((any::<bool>(), 0u16..2, -5i64..6), 1..8)) {
            for (_, small, delta) in flags {
                prop_assert!(small < 2);
                prop_assert!((-5..6).contains(&delta));
            }
        }
    }

    #[test]
    fn shrinking_finds_small_counterexample() {
        use super::strategy::Strategy;
        use super::test_runner::TestRng;
        let strat = (0i64..1000,);
        // Property "x < 10" fails for x >= 10; the minimal failing input is 10.
        let mut rng = TestRng::new(42);
        let mut failing = None;
        for i in 0..200 {
            let v = strat.generate(&mut rng);
            let _ = i;
            if v.0 >= 10 {
                failing = Some(v);
                break;
            }
        }
        let mut value = failing.expect("found failing case");
        loop {
            let next = strat.shrink(&value).into_iter().find(|c| c.0 >= 10);
            match next {
                Some(c) => value = c,
                None => break,
            }
        }
        assert_eq!(value.0, 10);
    }
}
