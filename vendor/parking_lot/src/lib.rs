//! Offline stand-in for the `parking_lot` crate.
//!
//! This workspace builds in environments with no crates.io access, so the
//! external `parking_lot` dependency is satisfied by this API-compatible
//! subset layered over `std::sync`. Semantics differ from the real crate in
//! exactly one deliberate way: lock poisoning is ignored (parking_lot locks
//! are not poisoning, so callers written against parking_lot never expect a
//! poisoned `Result`).
//!
//! Implemented surface (what the workspace actually uses):
//! `Mutex`/`MutexGuard`, `RwLock` with `read`/`write` guards, and `Condvar`
//! with `notify_one`/`notify_all`/`wait`/`wait_for`.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;
use std::time::Duration;

/// A mutual-exclusion primitive (non-poisoning facade over [`sync::Mutex`]).
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard {
            mutex: self,
            inner: Some(guard),
        }
    }

    /// Try to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard {
                mutex: self,
                inner: Some(guard),
            }),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                mutex: self,
                inner: Some(e.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (exclusive borrow proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard for [`Mutex`].
///
/// Holds the std guard in an `Option` so [`Condvar::wait_for`] can take it
/// out, park on the std condvar, and put the reacquired guard back — all
/// through a `&mut MutexGuard`, matching parking_lot's condvar signature.
pub struct MutexGuard<'a, T: ?Sized> {
    mutex: &'a Mutex<T>,
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Result of a timed condvar wait.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// `true` if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable paired with [`Mutex`].
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Block until notified, releasing the guard's mutex while parked.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(std_guard);
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard present");
        let (std_guard, res) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(std_guard);
        WaitTimeoutResult(res.timed_out())
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// Reader-writer lock (non-poisoning facade over [`sync::RwLock`]).
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Acquire exclusive access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Mutable access without locking (exclusive borrow proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

/// Shared-access guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// Exclusive-access guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

// `mutex` is unread on the guard today but keeps the borrow explicit and the
// struct layout ready for `Condvar::wait` APIs that need to re-lock.
impl<T: ?Sized> MutexGuard<'_, T> {
    /// The mutex this guard locks (used internally by condvar re-lock paths).
    #[allow(dead_code)]
    fn owner(&self) -> &Mutex<T> {
        self.mutex
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn rwlock_readers_coexist() {
        let l = RwLock::new(7);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let t0 = Instant::now();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
        assert!(t0.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn condvar_notify_crosses_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while !*g {
            let _ = cv.wait_for(&mut g, Duration::from_millis(50));
        }
        h.join().unwrap();
        assert!(*g);
    }
}
