//! Self-tests for the loom stand-in: the checker must actually explore
//! interleavings, find seeded races, detect deadlocks, and rescue timed
//! waits — otherwise the runtime's models prove nothing.

use std::collections::HashSet;
use std::sync::Mutex as StdMutex;

use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::{Arc, Condvar, Mutex};
use loom::thread;

/// Two racing stores: the checker must visit executions where each store
/// lands last, i.e. it genuinely explores more than one schedule.
#[test]
fn explores_both_store_orders() {
    let seen: Arc<StdMutex<HashSet<usize>>> = Arc::new(StdMutex::new(HashSet::new()));
    let seen2 = seen.clone();
    loom::model(move || {
        let a = Arc::new(AtomicUsize::new(0));
        let a1 = a.clone();
        let a2 = a.clone();
        let t1 = thread::spawn(move || a1.store(1, Ordering::SeqCst));
        let t2 = thread::spawn(move || a2.store(2, Ordering::SeqCst));
        t1.join().unwrap();
        t2.join().unwrap();
        seen2.lock().unwrap().insert(a.load(Ordering::SeqCst));
    });
    let seen = seen.lock().unwrap();
    assert!(
        seen.contains(&1) && seen.contains(&2),
        "checker failed to explore both store orders: saw {seen:?}"
    );
}

/// A classic lost-update race on load-then-store must be found: some
/// schedule makes the final value 1, and the model's assertion panics.
#[test]
#[should_panic(expected = "lost update")]
fn finds_lost_update_race() {
    loom::model(|| {
        let a = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let a = a.clone();
                thread::spawn(move || {
                    let v = a.load(Ordering::SeqCst);
                    a.store(v + 1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(a.load(Ordering::SeqCst), 2, "lost update");
    });
}

/// Mutexes serialise their critical sections: the same load-then-store
/// pattern under a lock never loses an update, in any schedule.
#[test]
fn mutex_excludes() {
    loom::model(|| {
        let m = Arc::new(Mutex::new(0u32));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let m = m.clone();
                thread::spawn(move || {
                    let mut g = m.lock();
                    let v = *g;
                    *g = v + 1;
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 2);
    });
}

/// ABBA lock ordering must be reported as a deadlock, not hang the test.
#[test]
#[should_panic(expected = "deadlock detected")]
fn detects_abba_deadlock() {
    loom::model(|| {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (a.clone(), b.clone());
        let t = thread::spawn(move || {
            let _ga = a2.lock();
            let _gb = b2.lock();
        });
        {
            let _gb = b.lock();
            let _ga = a.lock();
        }
        t.join().unwrap();
    });
}

/// A `wait_for` with no notifier must be rescued as timed-out instead of
/// being reported as a deadlock.
#[test]
fn timed_wait_rescued_as_timeout() {
    loom::model(|| {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        let mut g = m.lock();
        let mut timed_out = false;
        while !*g {
            if cv
                .wait_for(&mut g, std::time::Duration::from_millis(1))
                .timed_out()
            {
                timed_out = true;
                break;
            }
        }
        assert!(timed_out);
    });
}

/// Condvar handoff: a waiter parked before the notify still sees the
/// flag; a notify sent while the waiter holds the lock is not lost
/// either, because the re-check loop runs under the mutex.
#[test]
fn condvar_no_lost_wakeup() {
    loom::model(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let t = thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut g = m.lock();
            *g = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while !*g {
            cv.wait(&mut g);
        }
        drop(g);
        t.join().unwrap();
    });
}

/// Same replay prefix ⇒ same schedule: exploration is deterministic, so a
/// failure's printed schedule can be re-run. We check determinism
/// indirectly: two identical runs visit the same number of final values.
#[test]
fn exploration_is_deterministic() {
    let count = |_run: usize| {
        let seen: Arc<StdMutex<Vec<usize>>> = Arc::new(StdMutex::new(Vec::new()));
        let seen2 = seen.clone();
        loom::model(move || {
            let a = Arc::new(AtomicUsize::new(0));
            let a1 = a.clone();
            let t1 = thread::spawn(move || {
                a1.fetch_add(1, Ordering::SeqCst);
                a1.fetch_add(1, Ordering::SeqCst);
            });
            a.fetch_add(10, Ordering::SeqCst);
            t1.join().unwrap();
            seen2.lock().unwrap().push(a.load(Ordering::SeqCst));
        });
        let v = seen.lock().unwrap();
        v.len()
    };
    assert_eq!(count(0), count(1));
}
