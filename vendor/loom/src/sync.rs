//! Model-aware synchronisation primitives.
//!
//! Shapes follow the workspace's `parking_lot` stand-in (non-poisoning
//! `lock()`, `Condvar::wait(&mut guard)`), not `std::sync`, because the
//! runtime's sync shim swaps this module in for `parking_lot` under
//! `cfg(loom)`. Outside a model execution the types degrade to real
//! `std::sync` locking, so incidental use in test harness setup still
//! behaves correctly.
//!
//! `Arc`/`Weak` are re-exported from `std`: reference-count updates are not
//! explored as yield points, which is sound for schedule exploration (the
//! counts are internally synchronised and carry no model-visible state).

use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};
use std::sync::{Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdGuard, OnceLock};
use std::time::Duration;

pub use std::sync::{Arc, Weak};

use crate::rt;

/// Model-aware atomics: every operation is a scheduler yield point and
/// executes with `SeqCst` semantics regardless of the requested ordering.
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    use crate::rt;

    /// An atomic fence. A yield point; the fence itself is a no-op because
    /// all model atomics are already sequentially consistent.
    pub fn fence(_order: Ordering) {
        rt::branch();
    }

    macro_rules! atomic_int {
        ($(#[$doc:meta])* $name:ident, $std:ident, $t:ty) => {
            $(#[$doc])*
            #[derive(Debug, Default)]
            pub struct $name(std::sync::atomic::$std);

            impl $name {
                /// Create a new atomic with the given initial value.
                pub const fn new(v: $t) -> Self {
                    Self(std::sync::atomic::$std::new(v))
                }

                /// Load the value (yield point; always `SeqCst`).
                pub fn load(&self, _order: Ordering) -> $t {
                    rt::branch();
                    self.0.load(Ordering::SeqCst)
                }

                /// Store a value (yield point; always `SeqCst`).
                pub fn store(&self, v: $t, _order: Ordering) {
                    rt::branch();
                    self.0.store(v, Ordering::SeqCst)
                }

                /// Swap in a value, returning the previous one.
                pub fn swap(&self, v: $t, _order: Ordering) -> $t {
                    rt::branch();
                    self.0.swap(v, Ordering::SeqCst)
                }

                /// Compare-and-exchange (yield point; always `SeqCst`).
                pub fn compare_exchange(
                    &self,
                    current: $t,
                    new: $t,
                    _success: Ordering,
                    _failure: Ordering,
                ) -> Result<$t, $t> {
                    rt::branch();
                    self.0
                        .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
                }

                /// Weak compare-and-exchange; the model never fails
                /// spuriously, so this is the strong variant.
                pub fn compare_exchange_weak(
                    &self,
                    current: $t,
                    new: $t,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$t, $t> {
                    self.compare_exchange(current, new, success, failure)
                }

                /// Consume the atomic, returning the inner value.
                pub fn into_inner(self) -> $t {
                    self.0.into_inner()
                }
            }
        };
    }

    macro_rules! atomic_arith {
        ($name:ident, $t:ty) => {
            impl $name {
                /// Add, returning the previous value (yield point).
                pub fn fetch_add(&self, v: $t, _order: Ordering) -> $t {
                    rt::branch();
                    self.0.fetch_add(v, Ordering::SeqCst)
                }

                /// Subtract, returning the previous value (yield point).
                pub fn fetch_sub(&self, v: $t, _order: Ordering) -> $t {
                    rt::branch();
                    self.0.fetch_sub(v, Ordering::SeqCst)
                }

                /// Bitwise-or, returning the previous value (yield point).
                pub fn fetch_or(&self, v: $t, _order: Ordering) -> $t {
                    rt::branch();
                    self.0.fetch_or(v, Ordering::SeqCst)
                }

                /// Bitwise-and, returning the previous value (yield point).
                pub fn fetch_and(&self, v: $t, _order: Ordering) -> $t {
                    rt::branch();
                    self.0.fetch_and(v, Ordering::SeqCst)
                }

                /// Maximum, returning the previous value (yield point).
                pub fn fetch_max(&self, v: $t, _order: Ordering) -> $t {
                    rt::branch();
                    self.0.fetch_max(v, Ordering::SeqCst)
                }
            }
        };
    }

    atomic_int!(
        /// Model-aware `AtomicBool`.
        AtomicBool,
        AtomicBool,
        bool
    );
    atomic_int!(
        /// Model-aware `AtomicU8`.
        AtomicU8,
        AtomicU8,
        u8
    );
    atomic_int!(
        /// Model-aware `AtomicU32`.
        AtomicU32,
        AtomicU32,
        u32
    );
    atomic_int!(
        /// Model-aware `AtomicU64`.
        AtomicU64,
        AtomicU64,
        u64
    );
    atomic_int!(
        /// Model-aware `AtomicUsize`.
        AtomicUsize,
        AtomicUsize,
        usize
    );
    atomic_arith!(AtomicU8, u8);
    atomic_arith!(AtomicU32, u32);
    atomic_arith!(AtomicU64, u64);
    atomic_arith!(AtomicUsize, usize);

    impl AtomicBool {
        /// Bitwise-or, returning the previous value (yield point).
        pub fn fetch_or(&self, v: bool, _order: Ordering) -> bool {
            rt::branch();
            self.0.fetch_or(v, Ordering::SeqCst)
        }

        /// Bitwise-and, returning the previous value (yield point).
        pub fn fetch_and(&self, v: bool, _order: Ordering) -> bool {
            rt::branch();
            self.0.fetch_and(v, Ordering::SeqCst)
        }
    }

    /// Model-aware `AtomicPtr`.
    #[derive(Debug)]
    pub struct AtomicPtr<T>(std::sync::atomic::AtomicPtr<T>);

    impl<T> AtomicPtr<T> {
        /// Create a new atomic pointer.
        pub const fn new(p: *mut T) -> Self {
            Self(std::sync::atomic::AtomicPtr::new(p))
        }

        /// Load the pointer (yield point; always `SeqCst`).
        pub fn load(&self, _order: Ordering) -> *mut T {
            rt::branch();
            self.0.load(Ordering::SeqCst)
        }

        /// Store a pointer (yield point; always `SeqCst`).
        pub fn store(&self, p: *mut T, _order: Ordering) {
            rt::branch();
            self.0.store(p, Ordering::SeqCst)
        }

        /// Swap in a pointer, returning the previous one.
        pub fn swap(&self, p: *mut T, _order: Ordering) -> *mut T {
            rt::branch();
            self.0.swap(p, Ordering::SeqCst)
        }

        /// Compare-and-exchange (yield point; always `SeqCst`).
        pub fn compare_exchange(
            &self,
            current: *mut T,
            new: *mut T,
            _success: Ordering,
            _failure: Ordering,
        ) -> Result<*mut T, *mut T> {
            rt::branch();
            self.0
                .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
        }

        /// Consume the atomic, returning the inner pointer.
        pub fn into_inner(self) -> *mut T {
            self.0.into_inner()
        }
    }

    impl<T> Default for AtomicPtr<T> {
        fn default() -> Self {
            Self::new(std::ptr::null_mut())
        }
    }
}

/// A model-aware mutex with the `parking_lot` shape (non-poisoning).
pub struct Mutex<T: ?Sized> {
    id: OnceLock<usize>,
    /// Real lock used only outside a model execution; inside one, the
    /// scheduler serialises access so this is never contended.
    raw: StdMutex<()>,
    data: UnsafeCell<T>,
}

// SAFETY: the data is only reachable through a guard, and guard creation is
// mutually excluded either by the model scheduler (inside an execution) or
// by `raw` (outside one).
unsafe impl<T: ?Sized + Send> Send for Mutex<T> {}
// SAFETY: as above — `&Mutex<T>` only hands out exclusive access.
unsafe impl<T: ?Sized + Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(t: T) -> Mutex<T> {
        Mutex {
            id: OnceLock::new(),
            raw: StdMutex::new(()),
            data: UnsafeCell::new(t),
        }
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    fn id(&self) -> usize {
        *self.id.get_or_init(rt::fresh_resource_id)
    }

    /// Acquire the mutex, blocking (logically, inside a model) until it is
    /// available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match rt::current() {
            Some((exec, tid)) => {
                exec.mutex_acquire(self.id(), tid);
                MutexGuard {
                    lock: self,
                    raw: None,
                }
            }
            None => MutexGuard {
                lock: self,
                raw: Some(self.raw.lock().unwrap_or_else(|e| e.into_inner())),
            },
        }
    }

    /// Acquire the mutex if it is free.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match rt::current() {
            Some((exec, tid)) => {
                if exec.mutex_try_acquire(self.id(), tid) {
                    Some(MutexGuard {
                        lock: self,
                        raw: None,
                    })
                } else {
                    None
                }
            }
            None => self.raw.try_lock().ok().map(|g| MutexGuard {
                lock: self,
                raw: Some(g),
            }),
        }
    }

    /// Mutable access without locking (the borrow checker guarantees
    /// exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII guard for [`Mutex`]; releases the lock on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    /// `Some` when the lock was taken outside a model execution.
    raw: Option<StdGuard<'a, ()>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: the guard's existence proves exclusive logical ownership
        // (scheduler-serialised inside a model, `raw` outside).
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as in `deref` — the guard grants exclusive access.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.raw.is_none() {
            // No yield point here: drops also run while unwinding from an
            // aborted execution, where scheduling again would double-panic.
            // The release itself just flips scheduler state.
            if let Some((exec, _tid)) = rt::current() {
                exec.mutex_release(self.lock.id());
            }
        }
    }
}

/// Result of a timed condvar wait; mirrors `parking_lot::WaitTimeoutResult`.
#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A model-aware condition variable with the `parking_lot` shape.
pub struct Condvar {
    id: OnceLock<usize>,
    raw: StdCondvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub fn new() -> Condvar {
        Condvar {
            id: OnceLock::new(),
            raw: StdCondvar::new(),
        }
    }

    fn id(&self) -> usize {
        *self.id.get_or_init(rt::fresh_resource_id)
    }

    /// Atomically release the guard's mutex and wait for a notification;
    /// the mutex is reacquired before returning.
    pub fn wait<T: ?Sized>(&self, guard: &mut MutexGuard<'_, T>) {
        match rt::current() {
            Some((exec, tid)) => {
                debug_assert!(guard.raw.is_none(), "guard taken outside the model");
                let _ = exec.condvar_wait(self.id(), guard.lock.id(), tid, false);
            }
            None => {
                let g = guard.raw.take().expect("guard taken inside a model");
                guard.raw = Some(self.raw.wait(g).unwrap_or_else(|e| e.into_inner()));
            }
        }
    }

    /// Timed variant of [`Condvar::wait`]. Inside a model the duration is
    /// not simulated: the wait times out exactly when the scheduler would
    /// otherwise deadlock (the "timeout eventually fires" abstraction).
    pub fn wait_for<T: ?Sized>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        match rt::current() {
            Some((exec, tid)) => {
                debug_assert!(guard.raw.is_none(), "guard taken outside the model");
                let timed_out = exec.condvar_wait(self.id(), guard.lock.id(), tid, true);
                WaitTimeoutResult(timed_out)
            }
            None => {
                let g = guard.raw.take().expect("guard taken inside a model");
                let (g, r) = self
                    .raw
                    .wait_timeout(g, timeout)
                    .unwrap_or_else(|e| e.into_inner());
                guard.raw = Some(g);
                WaitTimeoutResult(r.timed_out())
            }
        }
    }

    /// Wake one waiter (the lowest-tid one, inside a model).
    pub fn notify_one(&self) {
        match rt::current() {
            Some((exec, tid)) => exec.notify_one(self.id(), tid),
            None => self.raw.notify_one(),
        }
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        match rt::current() {
            Some((exec, tid)) => exec.notify_all(self.id(), tid),
            None => self.raw.notify_all(),
        }
    }
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}
