//! The cooperative scheduler: one execution = one schedule of the model's
//! threads; the driver in [`crate::model`] re-runs the model until every
//! schedule reachable within the preemption bound has been explored.

use std::any::Any;
use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdGuard};

/// Panic payload used to unwind model threads when an execution aborts
/// (another thread panicked, or the scheduler detected a deadlock).
pub(crate) struct AbortExecution;

/// Global resource-id allocator (mutex/condvar identity). Ids are unique
/// for the process lifetime, so model objects recreated across executions
/// never collide.
static NEXT_RESOURCE_ID: AtomicUsize = AtomicUsize::new(1);

/// Allocate a fresh resource id (see [`NEXT_RESOURCE_ID`]).
pub(crate) fn fresh_resource_id() -> usize {
    NEXT_RESOURCE_ID.fetch_add(1, Ordering::Relaxed)
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Execution>, usize)>> = const { RefCell::new(None) };
}

/// Install the executing thread's scheduler registration.
pub(crate) fn set_current(exec: Arc<Execution>, tid: usize) {
    CURRENT.with(|c| *c.borrow_mut() = Some((exec, tid)));
}

/// The calling OS thread's execution handle, if it is a model thread.
pub(crate) fn current() -> Option<(Arc<Execution>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Run `f` at a scheduler yield point if inside a model; plain call
/// otherwise (loom types used outside [`crate::model`] degrade to direct,
/// unexplored execution).
pub(crate) fn branch() {
    if let Some((exec, tid)) = current() {
        exec.yield_point(tid);
    }
}

/// What a logical thread is currently able to do.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Status {
    /// Can run now.
    Runnable,
    /// Asked not to run until no runnable thread remains
    /// ([`crate::thread::yield_now`] / [`crate::hint::spin_loop`]).
    Yielded,
    /// Waiting for the mutex with this resource id.
    BlockedMutex(usize),
    /// Waiting on the condvar with this resource id.
    BlockedCondvar(usize),
    /// Waiting for the thread with this index to finish.
    BlockedJoin(usize),
    /// Done; never scheduled again.
    Finished,
}

struct Th {
    status: Status,
    /// The in-progress condvar wait is a `wait_for` (rescue-eligible).
    timed: bool,
    /// The rescue mechanism ended the thread's timed wait.
    timed_out: bool,
}

impl Th {
    fn new() -> Th {
        Th {
            status: Status::Runnable,
            timed: false,
            timed_out: false,
        }
    }
}

/// One scheduling decision: which of the eligible threads ran.
pub(crate) struct Choice {
    /// Thread ids that could have been picked, in exploration order.
    pub eligible: Vec<usize>,
    /// Index into `eligible` actually picked this execution.
    pub picked: usize,
}

#[derive(Default)]
struct MutexState {
    held_by: Option<usize>,
}

struct Sched {
    threads: Vec<Th>,
    active: usize,
    choices: Vec<Choice>,
    replay: Vec<usize>,
    preemptions: usize,
    bound: usize,
    branches: u64,
    max_branches: u64,
    mutexes: HashMap<usize, MutexState>,
    aborting: bool,
    panic: Option<Box<dyn Any + Send>>,
    done: bool,
}

/// Shared state of one model execution (one schedule being run).
pub(crate) struct Execution {
    sched: StdMutex<Sched>,
    cv: StdCondvar,
}

impl Execution {
    pub(crate) fn new(replay: Vec<usize>, bound: usize, max_branches: u64) -> Execution {
        Execution {
            sched: StdMutex::new(Sched {
                threads: vec![Th::new()],
                active: 0,
                choices: Vec::new(),
                replay,
                preemptions: 0,
                bound,
                branches: 0,
                max_branches,
                mutexes: HashMap::new(),
                aborting: false,
                panic: None,
                done: false,
            }),
            cv: StdCondvar::new(),
        }
    }

    fn lock(&self) -> StdGuard<'_, Sched> {
        self.sched.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Park the calling model thread until it is the active one. Panics
    /// with [`AbortExecution`] if the execution is being torn down.
    fn park_until_active<'a>(
        &'a self,
        mut g: StdGuard<'a, Sched>,
        tid: usize,
    ) -> StdGuard<'a, Sched> {
        while g.active != tid {
            if g.aborting {
                drop(g);
                panic::panic_any(AbortExecution);
            }
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
        if g.aborting {
            drop(g);
            panic::panic_any(AbortExecution);
        }
        g
    }

    /// Pick the next thread to run. `cur` is the thread giving up control
    /// (it may itself be eligible). Returns the picked tid, or `None` when
    /// the execution is complete (every thread finished).
    fn pick_next(&self, g: &mut StdGuard<'_, Sched>, cur: usize) -> Option<usize> {
        g.branches += 1;
        if g.branches > g.max_branches {
            self.abort_with(g, format!("livelock: exceeded {} branches", g.max_branches));
            return None;
        }
        let mut runnable: Vec<usize> = Vec::new();
        let mut yielded: Vec<usize> = Vec::new();
        for (i, t) in g.threads.iter().enumerate() {
            match t.status {
                Status::Runnable => runnable.push(i),
                Status::Yielded => yielded.push(i),
                _ => {}
            }
        }
        let mut eligible = if runnable.is_empty() {
            yielded
        } else {
            runnable
        };
        if eligible.is_empty() {
            // Everything is blocked. Wake the lowest-tid timed condvar
            // waiter as "timed out" — a real clock would eventually fire
            // its deadline — and schedule only it (forced, no branching).
            let rescue = g.threads.iter().position(|t| {
                matches!(t.status, Status::BlockedCondvar(_)) && t.timed && !t.timed_out
            });
            match rescue {
                Some(t) => {
                    g.threads[t].status = Status::Runnable;
                    g.threads[t].timed_out = true;
                    eligible = vec![t];
                }
                None => {
                    if g.threads.iter().all(|t| t.status == Status::Finished) {
                        g.done = true;
                        self.cv.notify_all();
                        return None;
                    }
                    let dump: Vec<String> = g
                        .threads
                        .iter()
                        .enumerate()
                        .map(|(i, t)| format!("thread {i}: {:?}", t.status))
                        .collect();
                    self.abort_with(g, format!("deadlock detected:\n  {}", dump.join("\n  ")));
                    return None;
                }
            }
        }
        let cur_runnable = g.threads.get(cur).map(|t| t.status) == Some(Status::Runnable);
        if cur_runnable && g.preemptions >= g.bound {
            // Budget exhausted: the current thread must keep running.
            eligible = vec![cur];
        } else if let Some(pos) = eligible.iter().position(|&t| t == cur) {
            // Explore "keep running" first; alternatives are preemptions.
            eligible.swap(0, pos);
        }
        let depth = g.choices.len();
        let picked_idx = if depth < g.replay.len() {
            let idx = g.replay[depth];
            assert!(
                idx < eligible.len(),
                "replay diverged: choice {depth} wants index {idx} of {eligible:?}"
            );
            idx
        } else {
            0
        };
        let next = eligible[picked_idx];
        g.choices.push(Choice {
            eligible,
            picked: picked_idx,
        });
        if cur_runnable && next != cur {
            g.preemptions += 1;
        }
        if g.threads[next].status == Status::Yielded {
            g.threads[next].status = Status::Runnable;
        }
        g.active = next;
        self.cv.notify_all();
        Some(next)
    }

    fn abort_with(&self, g: &mut StdGuard<'_, Sched>, msg: String) {
        if g.panic.is_none() {
            g.panic = Some(Box::new(msg));
        }
        g.aborting = true;
        self.cv.notify_all();
    }

    /// A plain yield point: offer the scheduler a chance to run another
    /// thread, then continue when re-picked.
    pub(crate) fn yield_point(&self, tid: usize) {
        let mut g = self.lock();
        if g.aborting {
            drop(g);
            panic::panic_any(AbortExecution);
        }
        match self.pick_next(&mut g, tid) {
            Some(next) if next == tid => {}
            Some(_) => {
                let _g = self.park_until_active(g, tid);
            }
            None => {
                drop(g);
                panic::panic_any(AbortExecution);
            }
        }
    }

    /// Yield point that deprioritises the caller
    /// ([`crate::thread::yield_now`] / spin hints).
    pub(crate) fn yield_deprioritised(&self, tid: usize) {
        let mut g = self.lock();
        if g.aborting {
            drop(g);
            panic::panic_any(AbortExecution);
        }
        g.threads[tid].status = Status::Yielded;
        match self.pick_next(&mut g, tid) {
            Some(next) if next == tid => {
                g.threads[tid].status = Status::Runnable;
            }
            Some(_) => {
                let _g = self.park_until_active(g, tid);
            }
            None => {
                drop(g);
                panic::panic_any(AbortExecution);
            }
        }
    }

    /// Block `tid` with `status`, schedule others, and return once `tid`
    /// has been made runnable and re-picked.
    fn block_and_wait(&self, tid: usize, status: Status) {
        let mut g = self.lock();
        if g.aborting {
            drop(g);
            panic::panic_any(AbortExecution);
        }
        g.threads[tid].status = status;
        match self.pick_next(&mut g, tid) {
            Some(next) if next == tid => {}
            Some(_) => {
                let _g = self.park_until_active(g, tid);
            }
            None => {
                drop(g);
                panic::panic_any(AbortExecution);
            }
        }
    }

    /// Acquire the model mutex `mid` for `tid`, blocking (logically) while
    /// it is held. The acquire attempt itself is a yield point.
    pub(crate) fn mutex_acquire(&self, mid: usize, tid: usize) {
        self.yield_point(tid);
        loop {
            {
                let mut g = self.lock();
                if g.aborting {
                    drop(g);
                    panic::panic_any(AbortExecution);
                }
                let m = g.mutexes.entry(mid).or_default();
                if m.held_by.is_none() {
                    m.held_by = Some(tid);
                    return;
                }
                assert_ne!(m.held_by, Some(tid), "model mutex is not reentrant");
            }
            self.block_and_wait(tid, Status::BlockedMutex(mid));
        }
    }

    /// Try to acquire `mid` without blocking.
    pub(crate) fn mutex_try_acquire(&self, mid: usize, tid: usize) -> bool {
        self.yield_point(tid);
        let mut g = self.lock();
        let m = g.mutexes.entry(mid).or_default();
        if m.held_by.is_none() {
            m.held_by = Some(tid);
            true
        } else {
            false
        }
    }

    /// Release `mid`; every thread blocked on it becomes runnable (they
    /// re-race for the lock when scheduled).
    pub(crate) fn mutex_release(&self, mid: usize) {
        let mut g = self.lock();
        if let Some(m) = g.mutexes.get_mut(&mid) {
            m.held_by = None;
        }
        for t in g.threads.iter_mut() {
            if t.status == Status::BlockedMutex(mid) {
                t.status = Status::Runnable;
            }
        }
    }

    /// Atomically release `mid` and wait on condvar `cvid`; reacquires
    /// `mid` before returning. Returns `true` when the wait ended via the
    /// timed-wait rescue rather than a notify.
    pub(crate) fn condvar_wait(&self, cvid: usize, mid: usize, tid: usize, timed: bool) -> bool {
        {
            let mut g = self.lock();
            if g.aborting {
                drop(g);
                panic::panic_any(AbortExecution);
            }
            if let Some(m) = g.mutexes.get_mut(&mid) {
                m.held_by = None;
            }
            for t in g.threads.iter_mut() {
                if t.status == Status::BlockedMutex(mid) {
                    t.status = Status::Runnable;
                }
            }
            g.threads[tid].timed = timed;
            g.threads[tid].timed_out = false;
        }
        self.block_and_wait(tid, Status::BlockedCondvar(cvid));
        let timed_out = {
            let mut g = self.lock();
            g.threads[tid].timed = false;
            g.threads[tid].timed_out
        };
        // Reacquire the mutex (without the extra leading yield point — the
        // wakeup scheduling decision already provided one).
        loop {
            {
                let mut g = self.lock();
                if g.aborting {
                    drop(g);
                    panic::panic_any(AbortExecution);
                }
                let m = g.mutexes.entry(mid).or_default();
                if m.held_by.is_none() {
                    m.held_by = Some(tid);
                    break;
                }
            }
            self.block_and_wait(tid, Status::BlockedMutex(mid));
        }
        timed_out
    }

    /// Wake the lowest-tid waiter blocked on condvar `cvid`, if any.
    pub(crate) fn notify_one(&self, cvid: usize, tid: usize) {
        self.yield_point(tid);
        let mut g = self.lock();
        if let Some(t) = g
            .threads
            .iter_mut()
            .find(|t| t.status == Status::BlockedCondvar(cvid))
        {
            t.status = Status::Runnable;
        }
    }

    /// Wake every waiter blocked on condvar `cvid`.
    pub(crate) fn notify_all(&self, cvid: usize, tid: usize) {
        self.yield_point(tid);
        let mut g = self.lock();
        for t in g.threads.iter_mut() {
            if t.status == Status::BlockedCondvar(cvid) {
                t.status = Status::Runnable;
            }
        }
    }

    /// Register a new logical thread; returns its tid.
    pub(crate) fn register_thread(&self) -> usize {
        let mut g = self.lock();
        g.threads.push(Th::new());
        g.threads.len() - 1
    }

    /// Park a freshly spawned OS thread until the scheduler first picks it.
    pub(crate) fn wait_first_schedule(&self, tid: usize) {
        let g = self.lock();
        let _g = self.park_until_active(g, tid);
    }

    /// Block `tid` until thread `target` finishes.
    pub(crate) fn join_wait(&self, target: usize, tid: usize) {
        self.yield_point(tid);
        loop {
            {
                let g = self.lock();
                if g.aborting {
                    drop(g);
                    panic::panic_any(AbortExecution);
                }
                if g.threads[target].status == Status::Finished {
                    return;
                }
            }
            self.block_and_wait(tid, Status::BlockedJoin(target));
        }
    }

    /// Mark `tid` finished (normally or with a user panic) and schedule a
    /// successor. Called by the thread's own wrapper as its last act.
    pub(crate) fn finish_thread(&self, tid: usize, panic_payload: Option<Box<dyn Any + Send>>) {
        let mut g = self.lock();
        g.threads[tid].status = Status::Finished;
        for t in g.threads.iter_mut() {
            if t.status == Status::BlockedJoin(tid) {
                t.status = Status::Runnable;
            }
        }
        if let Some(p) = panic_payload {
            if g.panic.is_none() {
                g.panic = Some(p);
            }
            g.aborting = true;
            self.cv.notify_all();
            return;
        }
        if g.aborting {
            self.cv.notify_all();
            return;
        }
        let _ = self.pick_next(&mut g, tid);
    }

    /// Driver side: block until the execution completes or aborts. Returns
    /// the recorded schedule and the panic payload, if any.
    pub(crate) fn wait_outcome(&self) -> (Vec<Choice>, Option<Box<dyn Any + Send>>) {
        let mut g = self.lock();
        while !g.done && g.panic.is_none() {
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
        let panic_payload = g.panic.take();
        if panic_payload.is_some() {
            // Wake blocked threads so their OS threads unwind and exit.
            g.aborting = true;
            for t in g.threads.iter_mut() {
                if !matches!(t.status, Status::Finished) {
                    t.status = Status::Runnable;
                }
            }
            self.cv.notify_all();
        }
        let choices = std::mem::take(&mut g.choices);
        (choices, panic_payload)
    }
}

/// Run a model closure as logical thread `tid` of `exec`, converting
/// panics into execution aborts. `publish` receives the closure's outcome
/// *before* the thread is marked finished, so a joiner woken by
/// [`Execution::finish_thread`] always finds the result already stored.
pub(crate) fn run_thread<T>(
    exec: &Arc<Execution>,
    tid: usize,
    f: impl FnOnce() -> T,
    publish: impl FnOnce(std::thread::Result<T>),
) {
    set_current(exec.clone(), tid);
    exec.wait_first_schedule(tid);
    let r = panic::catch_unwind(AssertUnwindSafe(f));
    CURRENT.with(|c| *c.borrow_mut() = None);
    match r {
        Ok(v) => {
            publish(Ok(v));
            exec.finish_thread(tid, None);
        }
        Err(p) => {
            if p.is::<AbortExecution>() {
                exec.finish_thread(tid, None);
            } else {
                publish(Err(Box::new("model thread panicked")));
                exec.finish_thread(tid, Some(p));
            }
        }
    }
}
