//! The exploration driver: re-runs a model closure under every schedule
//! reachable within the preemption bound, depth-first.

use std::panic;
use std::sync::Arc;

use crate::rt::{self, Choice, Execution};

/// Configures a model-checking run (loom-compatible subset).
#[derive(Clone, Debug)]
pub struct Builder {
    /// Maximum context switches away from a thread that could have kept
    /// running, per execution. `None` removes the bound (full DFS — only
    /// viable for tiny models). Overridable via `LOOM_MAX_PREEMPTIONS`.
    pub preemption_bound: Option<usize>,
    /// Yield points allowed per execution before the run is declared a
    /// livelock.
    pub max_branches: u64,
}

impl Default for Builder {
    fn default() -> Builder {
        let bound = std::env::var("LOOM_MAX_PREEMPTIONS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(2);
        Builder {
            preemption_bound: Some(bound),
            max_branches: 50_000,
        }
    }
}

impl Builder {
    /// A builder with the default preemption bound.
    pub fn new() -> Builder {
        Builder::default()
    }

    /// Exhaustively check `f` under this configuration. Panics (with the
    /// failing schedule on stderr) if any explored execution panics.
    pub fn check<F>(&self, f: F)
    where
        F: Fn() + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        let bound = self.preemption_bound.unwrap_or(usize::MAX);
        let max_branches = self.max_branches;
        let mut replay: Vec<usize> = Vec::new();
        let mut executions: u64 = 0;
        loop {
            executions += 1;
            let exec = Arc::new(Execution::new(replay.clone(), bound, max_branches));
            let exec0 = exec.clone();
            let f0 = f.clone();
            let t0 = std::thread::Builder::new()
                .name("loom-model-0".into())
                .spawn(move || {
                    rt::run_thread(&exec0, 0, move || f0(), |_| {});
                })
                .expect("spawn model thread");
            let (choices, panic_payload) = exec.wait_outcome();
            let _ = t0.join();
            if let Some(p) = panic_payload {
                eprintln!(
                    "loom: model failed on execution {executions}; schedule (thread per step):"
                );
                eprintln!("  {}", render_schedule(&choices));
                panic::resume_unwind(p);
            }
            match next_replay(&choices) {
                Some(r) => replay = r,
                None => break,
            }
        }
        if std::env::var_os("LOOM_LOG").is_some() {
            eprintln!("loom: explored {executions} executions");
        }
    }
}

/// Render a schedule as the sequence of thread ids that ran, compressing
/// runs (`3x t0` = three consecutive steps on thread 0).
fn render_schedule(choices: &[Choice]) -> String {
    let mut out = String::new();
    let mut run: Option<(usize, usize)> = None;
    let flush = |run: &mut Option<(usize, usize)>, out: &mut String| {
        if let Some((t, n)) = run.take() {
            if !out.is_empty() {
                out.push_str(", ");
            }
            out.push_str(&format!("{n}x t{t}"));
        }
    };
    for c in choices {
        let t = c.eligible[c.picked];
        match run {
            Some((rt, n)) if rt == t => run = Some((rt, n + 1)),
            _ => {
                flush(&mut run, &mut out);
                run = Some((t, 1));
            }
        }
    }
    flush(&mut run, &mut out);
    out
}

/// The deepest not-yet-exhausted decision, advanced by one; `None` when
/// the whole tree has been explored.
fn next_replay(choices: &[Choice]) -> Option<Vec<usize>> {
    let mut i = choices.len();
    while i > 0 {
        i -= 1;
        if choices[i].picked + 1 < choices[i].eligible.len() {
            let mut r: Vec<usize> = choices[..i].iter().map(|c| c.picked).collect();
            r.push(choices[i].picked + 1);
            return Some(r);
        }
    }
    None
}

/// Exhaustively check `f` under the default [`Builder`].
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::new().check(f)
}
