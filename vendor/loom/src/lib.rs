//! Offline stand-in for the `loom` model checker.
//!
//! This workspace builds with no crates.io access, so the real `loom` is
//! replaced by this self-contained checker. It keeps loom's programming
//! model — write a closure over `loom::thread` / `loom::sync` primitives,
//! hand it to [`model`], and every assertion in it is checked under *all*
//! explored thread interleavings — while simplifying the machinery:
//!
//! * **Sequentially consistent exploration.** Every atomic operation is
//!   executed with `SeqCst` semantics regardless of the `Ordering`
//!   argument; the checker explores interleavings of operations, not weak
//!   memory reorderings. Races that require `Relaxed`/`Acquire` weakness to
//!   manifest are out of scope (run ThreadSanitizer for those); races that
//!   are wrong under *any* ordering — double grants, lost wakeups, torn
//!   state machines, use-before-publish on an SC machine — are found
//!   exhaustively.
//! * **Real threads, one at a time.** Each execution spawns the model's
//!   threads as OS threads but gates them through a cooperative scheduler:
//!   exactly one runs between *yield points* (every atomic op, lock, unlock
//!   wait, notify, spawn, join, `spin_loop`). The scheduler records each
//!   decision and backtracks depth-first over the untried alternatives.
//! * **Bounded preemptions.** Switching away from a thread that could have
//!   continued counts against a per-execution preemption budget
//!   ([`Builder::preemption_bound`], default 2, env
//!   `LOOM_MAX_PREEMPTIONS`). Voluntary switches — blocking, finishing,
//!   [`thread::yield_now`] — are free. Most concurrency bugs manifest
//!   within two preemptions (CHESS); the bound keeps exploration finite
//!   and fast.
//! * **Deadlock and livelock detection.** If every thread is blocked the
//!   execution panics with a thread dump — unless a timed
//!   [`sync::Condvar::wait_for`] waiter exists, in which case it is woken
//!   with `timed_out() == true` (modelling "the timeout eventually
//!   fires"). Executions exceeding [`Builder::max_branches`] yield points
//!   abort as livelocks.
//!
//! On a failing execution the checker prints the schedule (which thread ran
//! at each decision point) before propagating the panic, so a counter-
//! example can be read off the test output.

#![deny(missing_docs)]

pub mod hint;
pub mod model;
pub mod rt;
pub mod sync;
pub mod thread;

pub use model::{model, Builder};
