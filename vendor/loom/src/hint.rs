//! Model-aware spin hints.

/// Spin-loop hint: a deprioritising yield point, so a model spinning on a
/// condition lets the thread that will satisfy it make progress.
pub fn spin_loop() {
    crate::thread::yield_now();
}
