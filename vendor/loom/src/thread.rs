//! Model-aware threads (loom-compatible subset of `std::thread`).

use std::sync::{Arc, Mutex as StdMutex};

use crate::rt;

/// Handle to join a model thread (see [`spawn`]).
pub struct JoinHandle<T> {
    tid: usize,
    result: Arc<StdMutex<Option<std::thread::Result<T>>>>,
    os: Option<std::thread::JoinHandle<()>>,
}

impl<T> JoinHandle<T> {
    /// Wait for the thread to finish and return its result. Blocks only
    /// logically: the scheduler keeps exploring other threads.
    pub fn join(mut self) -> std::thread::Result<T> {
        let (exec, tid) = rt::current().expect("join outside a loom model");
        exec.join_wait(self.tid, tid);
        let r = self
            .result
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .expect("joined thread left no result");
        if let Some(os) = self.os.take() {
            let _ = os.join();
        }
        r
    }
}

/// Spawn a model thread. Must be called from inside a model execution.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let (exec, tid) = rt::current().expect("spawn outside a loom model");
    let child = exec.register_thread();
    let result: Arc<StdMutex<Option<std::thread::Result<T>>>> = Arc::new(StdMutex::new(None));
    let exec2 = exec.clone();
    let result2 = result.clone();
    let os = std::thread::Builder::new()
        .name(format!("loom-model-{child}"))
        .spawn(move || {
            rt::run_thread(&exec2, child, f, move |r| {
                *result2.lock().unwrap_or_else(|e| e.into_inner()) = Some(r);
            });
        })
        .expect("spawn model thread");
    // The child is now eligible; give the scheduler the chance to run it
    // before the spawner's next step.
    exec.yield_point(tid);
    JoinHandle {
        tid: child,
        result,
        os: Some(os),
    }
}

/// Deprioritise the calling thread until no other thread can run.
pub fn yield_now() {
    if let Some((exec, tid)) = rt::current() {
        exec.yield_deprioritised(tid);
    }
}
