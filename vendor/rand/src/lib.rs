//! Offline stand-in for the `rand` crate (API-compatible subset).
//!
//! The workspace builds without crates.io access, so this crate provides the
//! pieces of rand 0.8 the code actually uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods
//! `gen`, `gen_bool`, and `gen_range` over integer and float ranges.
//!
//! The generator is SplitMix64 — statistically fine for workload generation
//! and fuzzing, fully deterministic per seed, and *not* cryptographic. The
//! streams differ from real rand 0.8, which is acceptable here: every
//! consumer seeds explicitly and only relies on determinism, never on a
//! specific stream.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Distributions and the `Standard` distribution used by [`Rng::gen`].
pub mod distributions {
    use super::RngCore;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Sample one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution: uniform over the whole type (floats: `[0, 1)`).
    pub struct Standard;

    impl Distribution<u64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<u32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 high bits -> [0, 1) with full double precision.
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }
}

use distributions::{Distribution, Standard};

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // Span fits in u64 for every supported type; modulo bias is
                // negligible for test workloads and keeps this deterministic
                // and branch-free.
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = end.wrapping_sub(start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit: f64 = Standard.sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit: f32 = Standard.sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// User-facing random-value methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Uniform sample from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial: `true` with probability `p` (must be in `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        let unit: f64 = Standard.sample(self);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seed material.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Build from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64` (the only constructor this workspace uses).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = splitmix64_stream(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64_step(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn splitmix64_stream(mut state: u64) -> impl FnMut() -> u64 {
    move || splitmix64_step(&mut state)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64_step, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            splitmix64_step(&mut self.state)
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut state = 0u64;
            for chunk in seed.chunks(8) {
                let mut b = [0u8; 8];
                b[..chunk.len()].copy_from_slice(chunk);
                state ^= u64::from_le_bytes(b).rotate_left(17);
            }
            StdRng { state }
        }
    }

    /// Alias kept for drop-in compatibility with code written against rand.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(-5..6);
            assert!((-5..6).contains(&v));
            let u = r.gen_range(0usize..3);
            assert!(u < 3);
            let f = r.gen_range(0.0..2.5);
            assert!((0.0..2.5).contains(&f));
            let i = r.gen_range(0u16..2);
            assert!(i < 2);
        }
    }

    #[test]
    fn gen_bool_edges() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(r.gen_bool(1.0));
        assert!(!r.gen_bool(0.0));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((1_500..3_500).contains(&hits), "hits={hits}");
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn works_through_unsized_refs() {
        fn sample<R: super::Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut r = StdRng::seed_from_u64(4);
        let f = sample(&mut r);
        assert!((0.0..1.0).contains(&f));
    }
}
